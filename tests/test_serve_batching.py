"""Batched-vs-sequential equivalence properties of the reasoning service.

The service's safety invariant: for any mix of circuits,
``reason_many`` must produce labels and extractions *identical* to calling
``reason`` per circuit — whether the answer came from the block-diagonal
batched forward pass, within-batch dedup, or the structural-hash LRUs.
Property tests draw random batches from a generator zoo (adders,
multipliers, datapath blocks) and check the invariant end to end.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Gamora
from repro.generators import (
    booth_multiplier,
    csa_multiplier,
    dot_product,
    multi_operand_adder,
    multiply_accumulate,
    squarer,
)
from repro.learn import TrainConfig, predict_labels_many, unbatch_predictions
from repro.serve import ReasoningService

# Small circuits keep per-example reasoning fast; the mix intentionally
# spans CSA/Booth multipliers, adder trees, and datapath blocks.
ZOO = [
    lambda: csa_multiplier(3),
    lambda: csa_multiplier(4),
    lambda: csa_multiplier(5),
    lambda: booth_multiplier(3),
    lambda: booth_multiplier(4),
    lambda: multi_operand_adder(4, 3),
    lambda: dot_product(3, 2),
    lambda: squarer(4),
    lambda: multiply_accumulate(3),
]
SPEC_IDS = st.integers(0, len(ZOO) - 1)


def tree_key(tree):
    """Canonical comparable form of an extracted adder tree."""
    return sorted(
        (adder.kind, adder.sum_var, adder.carry_var, tuple(sorted(adder.leaves)))
        for adder in tree.adders
    )


def assert_outcome_equal(batched, sequential):
    """Labels and extraction of a batched outcome match the sequential one."""
    assert set(batched.labels) == set(sequential.labels)
    for task in sequential.labels:
        np.testing.assert_array_equal(batched.labels[task], sequential.labels[task])
    assert tree_key(batched.tree) == tree_key(sequential.tree)
    assert batched.extraction.rejected_xor == sequential.extraction.rejected_xor
    assert batched.extraction.rejected_maj == sequential.extraction.rejected_maj
    assert batched.extraction.corrected_vars == sequential.extraction.corrected_vars


@pytest.fixture(scope="module")
def gamora():
    model = Gamora(model="shallow", train_config=TrainConfig(epochs=80))
    model.fit([csa_multiplier(6)])
    return model


@pytest.fixture(scope="module")
def service(gamora):
    return ReasoningService(gamora)


@pytest.fixture(scope="module")
def sequential_memo(gamora):
    """Per-spec sequential reason() outcomes (deterministic per structure)."""
    memo = {}

    def lookup(spec_id):
        if spec_id not in memo:
            memo[spec_id] = gamora.reason(ZOO[spec_id]())
        return memo[spec_id]

    return lookup


class TestBatchedEquivalence:
    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(spec_ids=st.lists(SPEC_IDS, min_size=1, max_size=4))
    def test_reason_many_matches_sequential(self, spec_ids, service,
                                            sequential_memo):
        """Random generator mixes: batched == sequential, per circuit."""
        circuits = [ZOO[spec_id]() for spec_id in spec_ids]
        batch = service.reason_many(circuits)
        assert len(batch) == len(circuits)
        for spec_id, outcome in zip(spec_ids, batch):
            assert_outcome_equal(outcome, sequential_memo(spec_id))

    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(spec_ids=st.lists(SPEC_IDS, min_size=1, max_size=4))
    def test_predict_many_matches_predict(self, spec_ids, gamora):
        """Batched label prediction is identical to per-circuit predict."""
        circuits = [ZOO[spec_id]() for spec_id in spec_ids]
        batched = gamora.predict_many(circuits)
        for circuit, predictions in zip(circuits, batched):
            solo = gamora.predict(circuit)
            for task in solo:
                np.testing.assert_array_equal(predictions[task], solo[task])

    def test_empty_batch(self, gamora):
        batch = gamora.reason_many([])
        assert len(batch) == 0
        assert list(batch) == []
        assert batch.stats.batch_size == 0
        assert gamora.predict_many([]) == []

    def test_single_item_matches_reason(self, gamora, service):
        circuit = csa_multiplier(4)
        batch = service.reason_many([circuit])
        assert len(batch) == 1
        assert_outcome_equal(batch[0], gamora.reason(csa_multiplier(4)))

    def test_duplicates_deduplicated_and_identical(self, gamora):
        service = ReasoningService(gamora)
        circuits = [csa_multiplier(4), booth_multiplier(3), csa_multiplier(4)]
        batch = service.reason_many(circuits)
        assert batch.stats.batch_size == 3
        assert batch.stats.unique_circuits == 2
        assert_outcome_equal(batch[0], batch[2])
        assert_outcome_equal(batch[0], gamora.reason(csa_multiplier(4)))


class TestServiceCaching:
    def test_result_cache_round_trip_is_transparent(self, gamora):
        service = ReasoningService(gamora)
        circuits = [csa_multiplier(4), squarer(4)]
        first = service.reason_many(circuits)
        second = service.reason_many([squarer(4), csa_multiplier(4)])
        assert second.stats.result_hits == 2
        assert second.stats.unique_circuits == 0
        assert_outcome_equal(second[0], first[1])
        assert_outcome_equal(second[1], first[0])

    def test_cached_labels_are_frozen(self, gamora):
        """Outcome labels alias the result cache: mutation must raise, not
        silently poison later cache hits."""
        service = ReasoningService(gamora)
        outcome = service.reason_many([csa_multiplier(4)])[0]
        with pytest.raises(ValueError):
            outcome.labels["root"][0] = 99

    def test_cached_extraction_arrays_are_frozen(self, gamora):
        """The v3 payload's array-core tree aliases the cache exactly like
        the labels do: its columns must reject mutation too."""
        service = ReasoningService(gamora)
        outcome = service.reason_many([csa_multiplier(4)])[0]
        core = outcome.extraction.tree.arrays()
        with pytest.raises(ValueError):
            core.sum_var[0] = 5
        with pytest.raises(ValueError):
            core.leaves[0, 0] = 5

    def test_labels_writable_when_result_cache_disabled(self, gamora):
        """Writability parity with the sequential path (regression).

        With ``result_cache_size=0`` nothing aliases a cache entry, so
        batched callers must get writable label arrays exactly like
        ``Gamora.reason`` returns — the old code froze unconditionally.
        """
        service = ReasoningService(gamora, result_cache_size=0)
        batched = service.reason_many([csa_multiplier(4)])[0]
        sequential = gamora.reason(csa_multiplier(4))
        for task in sequential.labels:
            assert sequential.labels[task].flags.writeable
            assert batched.labels[task].flags.writeable == \
                sequential.labels[task].flags.writeable
        batched.labels["root"][0] = 99  # must not raise

    def test_duplicate_outcomes_do_not_alias_when_cache_disabled(self, gamora):
        """Writable labels of within-batch duplicates must be independent:
        mutating one outcome must not silently change its twin."""
        service = ReasoningService(gamora, result_cache_size=0)
        batch = service.reason_many([csa_multiplier(4), csa_multiplier(4)])
        first, second = batch[0], batch[1]
        original = second.labels["root"][0]
        first.labels["root"][0] = original + 7
        assert second.labels["root"][0] == original
        # The extraction objects must be independent too.
        num_adders = len(second.tree.adders)
        first.tree.adders.clear()
        assert len(second.tree.adders) == num_adders

    def test_lsb_outputs_ignored_when_correction_off(self, gamora):
        """``lsb_outputs`` has no effect with ``correct_lsb=False``; the
        result-cache key is normalized so such calls share one entry."""
        service = ReasoningService(gamora)
        circuit = csa_multiplier(4)
        first = service.reason_many([circuit], correct_lsb=False, lsb_outputs=4)
        second = service.reason_many([circuit], correct_lsb=False, lsb_outputs=99)
        assert second.stats.result_hits == 1
        assert second.stats.unique_circuits == 0
        assert_outcome_equal(second[0], first[0])
        # With correction on, the knob is semantic again and must miss.
        changed = service.reason_many([circuit], correct_lsb=True, lsb_outputs=2)
        assert changed.stats.result_hits == 0

    def test_option_changes_bypass_result_cache(self, gamora):
        service = ReasoningService(gamora)
        circuit = csa_multiplier(4)
        service.reason_many([circuit])
        changed = service.reason_many([circuit], correct_lsb=False)
        assert changed.stats.result_hits == 0
        assert_outcome_equal(
            changed[0], gamora.reason(csa_multiplier(4), correct_lsb=False)
        )

    def test_engine_keyed_separately_and_equivalent(self, gamora):
        """The post-processing engine is part of the result-cache key, and
        both engines serve identical trees through the service."""
        service = ReasoningService(gamora)
        circuit = csa_multiplier(4)
        fast = service.reason_many([circuit])
        legacy = service.reason_many([circuit], engine="legacy")
        assert legacy.stats.result_hits == 0  # no cross-engine cache hits
        assert fast[0].tree.adders == legacy[0].tree.adders
        again = service.reason_many([circuit], engine="legacy")
        assert again.stats.result_hits == 1

    def test_disabled_caches_still_equivalent(self, gamora):
        service = ReasoningService(gamora, graph_cache_size=0,
                                   result_cache_size=0)
        circuit = booth_multiplier(3)
        first = service.reason_many([circuit])
        second = service.reason_many([circuit])
        assert second.stats.result_hits == 0
        assert_outcome_equal(first[0], second[0])

    def test_fit_drops_stale_service(self):
        gamora = Gamora(model="shallow", train_config=TrainConfig(epochs=5))
        gamora.fit([csa_multiplier(4)])
        gamora.reason_many([csa_multiplier(4)])
        stale = gamora._service
        assert stale is not None
        gamora.fit([csa_multiplier(4)], epochs=5)
        assert gamora._service is None  # retraining invalidates cached results
        fresh = gamora.reason_many([csa_multiplier(4)])
        assert fresh.stats.result_hits == 0

    def test_stats_accounting(self, gamora):
        service = ReasoningService(gamora)
        batch = service.reason_many([csa_multiplier(4), csa_multiplier(5)])
        stats = batch.stats
        assert stats.batch_size == 2
        assert stats.unique_circuits == 2
        assert stats.num_nodes == sum(
            service.encode(c).num_nodes
            for c in (csa_multiplier(4), csa_multiplier(5))
        )
        assert stats.inference_seconds > 0
        assert stats.postprocess_seconds > 0
        assert stats.total_seconds >= (
            stats.inference_seconds + stats.postprocess_seconds
        )
        assert "batch=2" in stats.summary()


class TestUnbatchPredictions:
    def test_round_trip(self, gamora):
        graphs = [
            gamora.prepare(c, with_labels=False)
            for c in (csa_multiplier(3), csa_multiplier(4))
        ]
        split = predict_labels_many(gamora.net, graphs)
        assert len(split) == 2
        for graph, predictions in zip(graphs, split):
            for task, array in predictions.items():
                assert array.shape[0] == graph.num_nodes

    def test_size_mismatch_rejected(self):
        predictions = {"root": np.zeros(5, dtype=np.int64)}
        with pytest.raises(ValueError):
            unbatch_predictions(predictions, [2, 2])

    def test_empty_graph_list(self, gamora):
        assert predict_labels_many(gamora.net, []) == []
