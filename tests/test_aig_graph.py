"""Unit tests for the core AIG data structure."""

import pytest

from repro.aig import AIG, CONST0, CONST1, lit_neg, lit_not, lit_var, make_lit
from repro.aig.simulate import evaluate_bits


class TestLiterals:
    def test_literal_encoding_roundtrip(self):
        for var in (0, 1, 5, 1000):
            for neg in (0, 1):
                lit = make_lit(var, neg)
                assert lit_var(lit) == var
                assert lit_neg(lit) == neg

    def test_not_is_involution(self):
        assert lit_not(lit_not(42)) == 42
        assert lit_not(CONST0) == CONST1


class TestConstruction:
    def test_inputs_before_ands_enforced(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        aig.add_and(a, b)
        with pytest.raises(ValueError):
            aig.add_input()

    def test_counts(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        y = aig.add_and(a, b)
        aig.add_output(y)
        assert aig.num_inputs == 2
        assert aig.num_ands == 1
        assert aig.num_outputs == 1
        assert aig.num_vars == 4  # const + 2 PIs + 1 AND
        assert aig.num_edges == 2

    def test_unknown_literal_rejected(self):
        aig = AIG()
        a = aig.add_input()
        with pytest.raises(ValueError):
            aig.add_and(a, 999)


class TestConstantFolding:
    def setup_method(self):
        self.aig = AIG()
        self.a, self.b = self.aig.add_inputs(2)

    def test_and_with_false_is_false(self):
        assert self.aig.add_and(self.a, CONST0) == CONST0

    def test_and_with_true_is_identity(self):
        assert self.aig.add_and(self.a, CONST1) == self.a

    def test_and_idempotent(self):
        assert self.aig.add_and(self.a, self.a) == self.a

    def test_and_with_complement_is_false(self):
        assert self.aig.add_and(self.a, lit_not(self.a)) == CONST0

    def test_no_node_created_by_folding(self):
        before = self.aig.num_ands
        self.aig.add_and(self.a, CONST1)
        self.aig.add_and(self.a, self.a)
        assert self.aig.num_ands == before


class TestStructuralHashing:
    def test_same_pair_returns_same_node(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        first = aig.add_and(a, b)
        second = aig.add_and(b, a)  # commuted
        assert first == second
        assert aig.num_ands == 1

    def test_different_polarity_is_different_node(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        plain = aig.add_and(a, b)
        inverted = aig.add_and(lit_not(a), b)
        assert plain != inverted
        assert aig.num_ands == 2

    def test_find_and_locates_without_creating(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        node = aig.add_and(a, b)
        assert aig.find_and(b, a) == node
        assert aig.find_and(lit_not(a), b) is None
        assert aig.num_ands == 1

    def test_xor_uses_three_nodes(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        aig.add_xor(a, b)
        assert aig.num_ands == 3

    def test_shared_subterms_are_reused(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        aig.add_xor(a, b)
        count = aig.num_ands
        # MAJ shares nothing with XOR here, but a second XOR is free.
        aig.add_xor(a, b)
        assert aig.num_ands == count


class TestDerivedGates:
    """Every derived gate must compute its defining function."""

    @pytest.mark.parametrize("bits", [(x, y) for x in (0, 1) for y in (0, 1)])
    def test_two_input_gates(self, bits):
        aig = AIG()
        a, b = aig.add_inputs(2)
        aig.add_output(aig.add_or(a, b), "or")
        aig.add_output(aig.add_nand(a, b), "nand")
        aig.add_output(aig.add_nor(a, b), "nor")
        aig.add_output(aig.add_xor(a, b), "xor")
        aig.add_output(aig.add_xnor(a, b), "xnor")
        x, y = bits
        got = evaluate_bits(aig, [x, y])
        assert got == [x | y, 1 - (x & y), 1 - (x | y), x ^ y, 1 - (x ^ y)]

    @pytest.mark.parametrize(
        "bits", [(x, y, z) for x in (0, 1) for y in (0, 1) for z in (0, 1)]
    )
    def test_three_input_gates(self, bits):
        aig = AIG()
        s, t, e = aig.add_inputs(3)
        aig.add_output(aig.add_mux(s, t, e), "mux")
        aig.add_output(aig.add_maj3(s, t, e), "maj")
        x, y, z = bits
        got = evaluate_bits(aig, [x, y, z])
        assert got == [y if x else z, int(x + y + z >= 2)]

    def test_multi_input_gates(self):
        aig = AIG()
        lits = aig.add_inputs(5)
        aig.add_output(aig.add_and_multi(lits), "and5")
        aig.add_output(aig.add_or_multi(lits), "or5")
        assert evaluate_bits(aig, [1, 1, 1, 1, 1]) == [1, 1]
        assert evaluate_bits(aig, [1, 1, 0, 1, 1]) == [0, 1]
        assert evaluate_bits(aig, [0, 0, 0, 0, 0]) == [0, 0]

    def test_empty_multi_and_is_true(self):
        aig = AIG()
        assert aig.add_and_multi([]) == CONST1
        assert aig.add_or_multi([]) == CONST0


class TestStructure:
    def test_levels_and_depth(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        x = aig.add_and(a, b)
        y = aig.add_and(x, c)
        aig.add_output(y)
        levels = aig.levels()
        assert levels[lit_var(a)] == 0
        assert levels[lit_var(x)] == 1
        assert levels[lit_var(y)] == 2
        assert aig.depth() == 2

    def test_fanout_counts(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        x = aig.add_and(a, b)
        aig.add_and(x, c)
        aig.add_and(x, a)
        counts = aig.fanout_counts()
        assert counts[lit_var(x)] == 2
        assert counts[lit_var(a)] == 2  # read by x and by the third AND

    def test_transitive_fanin(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        x = aig.add_and(a, b)
        y = aig.add_and(x, c)
        cone = aig.transitive_fanin([lit_var(y)])
        assert lit_var(x) in cone
        assert lit_var(a) in cone
        assert lit_var(y) in cone

    def test_stats_keys(self, csa4):
        stats = csa4.aig.stats()
        assert stats["ands"] == csa4.aig.num_ands
        assert stats["edges"] == 2 * stats["ands"]
        assert stats["depth"] > 0

    def test_fanin_accessors_reject_non_and(self):
        aig = AIG()
        a = aig.add_input()
        with pytest.raises(ValueError):
            aig.fanin0(lit_var(a))


class TestVectorizedStructure:
    """The wavefront ``levels()`` / bincount ``fanout_counts()`` paths must
    agree with the scalar per-node recurrence on every graph shape."""

    @staticmethod
    def _reference_levels(aig: AIG) -> list[int]:
        lev = [0] * aig.num_vars
        for var in aig.and_vars():
            lev[var] = 1 + max(lev[aig.fanin0(var) >> 1],
                               lev[aig.fanin1(var) >> 1])
        return lev

    @pytest.mark.parametrize("seed", range(8))
    def test_wavefront_levels_match_scalar(self, monkeypatch, seed):
        from repro.utils.random_circuits import random_aig

        monkeypatch.setattr(AIG, "_LEVELS_VECTOR_MIN", 0)  # force vector path
        aig = random_aig(num_inputs=5, num_ands=40, num_outputs=3, seed=seed)
        assert aig.levels() == self._reference_levels(aig)
        assert aig.levels_array().tolist() == aig.levels()

    def test_wavefront_levels_deep_chain(self, monkeypatch):
        monkeypatch.setattr(AIG, "_LEVELS_VECTOR_MIN", 0)
        aig = AIG()
        a, b = aig.add_inputs(2)
        lit = a
        for _ in range(50):
            lit = aig.add_and(lit, b)
            b = lit_not(b)  # avoid strash collapsing the chain
        aig.add_output(lit)
        assert aig.levels() == self._reference_levels(aig)
        assert aig.depth() == 50

    def test_levels_cache_invalidated_on_append(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        x = aig.add_and(a, b)
        assert aig.levels()[lit_var(x)] == 1
        y = aig.add_and(x, lit_not(b))
        assert aig.levels()[lit_var(y)] == 2

    def test_fanout_counts_empty_and_reference(self, csa4):
        assert AIG().fanout_counts() == [0]
        aig = csa4.aig
        reference = [0] * aig.num_vars
        for var in aig.and_vars():
            reference[aig.fanin0(var) >> 1] += 1
            reference[aig.fanin1(var) >> 1] += 1
        assert aig.fanout_counts() == reference

    def test_and_pair_groups_shape(self, csa4):
        aig = csa4.aig
        keys, starts, members = aig.and_pair_groups()
        assert len(starts) == len(keys) + 1
        assert starts[0] == 0 and starts[-1] == len(members)
        index = aig.and_pair_index()
        assert sum(len(vs) for vs in index.values()) == len(members)
        # Groups ascend and members ascend within each group.
        for g in range(len(keys)):
            group = members[starts[g]:starts[g + 1]].tolist()
            assert group == sorted(group)

    def test_and_pair_groups_invalidated_on_append(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        aig.add_and(a, b)
        keys_before, _, _ = aig.and_pair_groups()
        aig.add_and(b, c)
        keys_after, _, members_after = aig.and_pair_groups()
        assert len(keys_after) == len(keys_before) + 1
        assert len(members_after) == 2
