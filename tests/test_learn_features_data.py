"""Tests for feature encoding and graph dataset construction."""

import numpy as np
import pytest

from repro.aig import AIG, lit_not, lit_var
from repro.learn.data import adjacency_operator, batch_graphs, build_graph_data
from repro.learn.features import encode_features, num_features


class TestFeatures:
    def test_paper_examples(self):
        """Fig. 3(b): PI -> [0,0,0]; plain AND -> [1,0,0]; double-negated
        AND -> [1,1,1]."""
        aig = AIG()
        a, b = aig.add_inputs(2)
        plain = aig.add_and(a, b)
        negated = aig.add_and(lit_not(a), lit_not(b))
        feats = encode_features(aig)
        np.testing.assert_array_equal(feats[lit_var(a)], [0, 0, 0])
        np.testing.assert_array_equal(feats[lit_var(plain)], [1, 0, 0])
        np.testing.assert_array_equal(feats[lit_var(negated)], [1, 1, 1])

    def test_structural_mode_single_column(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        aig.add_and(a, lit_not(b))
        feats = encode_features(aig, mode="structural")
        assert feats.shape[1] == 1
        assert num_features("structural") == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            num_features("spectral")

    def test_mixed_polarity(self, csa4):
        feats = encode_features(csa4.aig)
        fanin0, fanin1 = csa4.aig.fanin_arrays()
        for var in list(csa4.aig.and_vars())[:30]:
            assert feats[var, 0] == 1
            assert feats[var, 1] == (fanin0[var] & 1)
            assert feats[var, 2] == (fanin1[var] & 1)


class TestAdjacency:
    def build_chain(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        x = aig.add_and(a, b)
        y = aig.add_and(x, c)
        aig.add_output(y)
        return aig, (a, b, c, x, y)

    def test_in_direction_rows(self):
        aig, (a, b, c, x, y) = self.build_chain()
        adj = adjacency_operator(aig, "in").toarray()
        xv, yv = lit_var(x), lit_var(y)
        # Row of x averages its two fan-ins.
        assert adj[xv, lit_var(a)] == 0.5
        assert adj[xv, lit_var(b)] == 0.5
        # PIs aggregate nothing.
        assert adj[lit_var(a)].sum() == 0
        # Row sums are 1 for AND nodes.
        np.testing.assert_allclose(adj[yv].sum(), 1.0)

    def test_out_direction(self):
        aig, (a, b, c, x, y) = self.build_chain()
        adj = adjacency_operator(aig, "out").toarray()
        # a's only fan-out is x.
        assert adj[lit_var(a), lit_var(x)] == 1.0
        # y has no fan-outs.
        assert adj[lit_var(y)].sum() == 0

    def test_both_direction_symmetric_support(self):
        aig, _nodes = self.build_chain()
        adj = adjacency_operator(aig, "both").toarray()
        assert ((adj > 0) == (adj > 0).T).all()

    def test_unknown_direction(self):
        with pytest.raises(ValueError):
            adjacency_operator(AIG(), "sideways")


class TestGraphData:
    def test_shapes_and_mask(self, csa4):
        data = build_graph_data(csa4.aig)
        assert data.features.shape == (csa4.aig.num_vars, 3)
        assert data.adjacency.shape == (csa4.aig.num_vars,) * 2
        assert not data.mask[0]  # constant excluded
        assert data.mask[1:].all()
        assert set(data.labels) == {"root", "xor", "maj"}

    def test_structural_labels_match_functional(self, csa4):
        functional = build_graph_data(csa4.aig, labels_source="functional")
        structural = build_graph_data(csa4.aig, labels_source="structural")
        for task in ("root", "xor", "maj"):
            np.testing.assert_array_equal(
                functional.labels[task], structural.labels[task]
            )

    def test_without_labels(self, csa4):
        data = build_graph_data(csa4.aig, with_labels=False)
        assert data.labels is None

    def test_bad_labels_source(self, csa4):
        with pytest.raises(ValueError):
            build_graph_data(csa4.aig, labels_source="oracle")


class TestBatching:
    def test_block_diagonal(self, csa4, booth4):
        first = build_graph_data(csa4.aig)
        second = build_graph_data(booth4.aig)
        merged = batch_graphs([first, second])
        assert merged.num_nodes == first.num_nodes + second.num_nodes
        assert merged.num_edges == first.num_edges + second.num_edges
        assert merged.sizes == [first.num_nodes, second.num_nodes]
        # No cross-graph edges.
        block = merged.adjacency[: first.num_nodes, first.num_nodes:]
        assert block.nnz == 0

    def test_labels_concatenated(self, csa4, booth4):
        first = build_graph_data(csa4.aig)
        second = build_graph_data(booth4.aig)
        merged = batch_graphs([first, second])
        np.testing.assert_array_equal(
            merged.labels["xor"][: first.num_nodes], first.labels["xor"]
        )
        np.testing.assert_array_equal(
            merged.labels["xor"][first.num_nodes:], second.labels["xor"]
        )

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            batch_graphs([])

    def test_feature_width_mismatch_rejected(self, csa4):
        full = build_graph_data(csa4.aig, feature_mode="full")
        slim = build_graph_data(csa4.aig, feature_mode="structural")
        with pytest.raises(ValueError):
            batch_graphs([full, slim])
