"""Tests for the genlib parser, expressions, and built-in libraries."""

import pytest

from repro.aig.npn import MAJ3, XOR3, npn_canon
from repro.techmap.genlib import Cell, Library, parse_expression, parse_genlib
from repro.techmap.libraries import FA_CELL_NAME, HA_CELL_NAME, asap7_like, mcnc_reduced


class TestExpressions:
    @pytest.mark.parametrize(
        "text,vars_,evals",
        [
            ("a*b", ["a", "b"], {(0, 0): 0, (1, 1): 1, (1, 0): 0}),
            ("a+b", ["a", "b"], {(0, 0): 0, (1, 0): 1}),
            ("!a", ["a"], {(0,): 1, (1,): 0}),
            ("a^b", ["a", "b"], {(0, 1): 1, (1, 1): 0}),
            ("!((a*b)+c)", ["a", "b", "c"], {(1, 1, 0): 0, (0, 0, 0): 1}),
            ("a'", ["a"], {(0,): 1}),
            ("a b", ["a", "b"], {(1, 1): 1, (1, 0): 0}),  # implicit AND
            ("CONST1", [], {(): 1}),
        ],
    )
    def test_parse_and_eval(self, text, vars_, evals):
        expr = parse_expression(text)
        assert expr.variables() == vars_
        for bits, expected in evals.items():
            assignment = dict(zip(vars_, bits))
            assert expr.evaluate(assignment) == expected

    def test_precedence_or_lowest(self):
        expr = parse_expression("a+b*c")
        # a + (b*c)
        assert expr.evaluate({"a": 1, "b": 0, "c": 0}) == 1
        assert expr.evaluate({"a": 0, "b": 1, "c": 0}) == 0

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ValueError):
            parse_expression("(a*b")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_expression("a*b)")


class TestCell:
    def test_truth_table(self):
        cell = Cell("nand2", 2.0, ["a", "b"], {"O": parse_expression("!(a*b)")})
        assert cell.truth() == 0b0111

    def test_multi_output_truths(self):
        lib = asap7_like()
        fa = lib[FA_CELL_NAME]
        assert fa.is_multi_output
        assert fa.truth("sn") == XOR3
        assert fa.truth("con") == MAJ3

    def test_ambiguous_truth_rejected(self):
        fa = asap7_like()[FA_CELL_NAME]
        with pytest.raises(ValueError):
            fa.truth()


class TestParser:
    def test_parse_gate_lines(self):
        lib = parse_genlib(
            """
            # comment
            GATE inv 1.0 O=!a; PIN * INV 1 999 1 0 1 0
            GATE and2 2.0 O=a*b;
            """
        )
        assert len(lib) == 2
        assert lib["inv"].truth() == 0b01
        assert lib["and2"].area == 2.0

    def test_malformed_gate_rejected(self):
        with pytest.raises(ValueError):
            parse_genlib("GATE broken 1.0\n")
        with pytest.raises(ValueError):
            parse_genlib("GATE broken 1.0 noequals;\n")

    def test_duplicate_cells_rejected(self):
        text = "GATE x 1.0 O=a;\nGATE x 2.0 O=!a;\n"
        with pytest.raises(ValueError):
            parse_genlib(text)


class TestBuiltinLibraries:
    def test_mcnc_constraints(self):
        lib = mcnc_reduced()
        # Paper: reduced library with gate input size <= 3 (mux21/aoi22
        # reach 3-4 pins; the arithmetic gates stay <= 3).
        assert lib.inverter().name == "inv1"
        assert lib.buffer() is not None
        assert all(not cell.is_multi_output for cell in lib.cells)

    def test_asap7_has_multi_output_adders(self):
        lib = asap7_like()
        names = {cell.name for cell in lib.cells}
        assert FA_CELL_NAME in names and HA_CELL_NAME in names
        assert len(lib.multi_output_cells()) == 2
        assert len(lib) > len(mcnc_reduced())

    def test_asap7_has_xor3_and_maj(self):
        lib = asap7_like()
        assert npn_canon(lib["XOR3x1"].truth(), 3) == npn_canon(XOR3, 3)
        assert npn_canon(lib["MAJ3x1"].truth(), 3) == npn_canon(MAJ3, 3)

    def test_constants(self):
        lib = mcnc_reduced()
        assert lib.constant(0) is not None
        assert lib.constant(1) is not None

    def test_lookup_api(self):
        lib = mcnc_reduced()
        assert "xor2" in lib
        assert "flipflop" not in lib
        assert lib.find(lambda c: c.num_pins == 1 and c.truth() == 0b01).name == "inv1"
