"""Structural detector: agreement with the functional reference."""

import pytest

from repro.aig import AIG, lit_not, lit_var
from repro.generators import booth_multiplier, csa_multiplier
from repro.reasoning import (
    detect_xor_maj,
    detect_xor_maj_structural,
    extract_adder_tree,
    match_xor_operands,
)


class TestXorShape:
    def test_matches_generated_xor(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        y = aig.add_xor(a, b)
        ops = match_xor_operands(aig, lit_var(y))
        assert ops is not None
        assert {lit_var(ops[0]), lit_var(ops[1])} == {lit_var(a), lit_var(b)}

    def test_matches_xnor(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        y = aig.add_xnor(a, b)
        assert match_xor_operands(aig, lit_var(y)) is not None

    def test_rejects_plain_and(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        y = aig.add_and(a, b)
        assert match_xor_operands(aig, lit_var(y)) is None

    def test_rejects_or_of_disjoint_ands(self):
        aig = AIG()
        a, b, c, d = aig.add_inputs(4)
        y = aig.add_or(aig.add_and(a, b), aig.add_and(c, d))
        assert match_xor_operands(aig, lit_var(y)) is None


class TestAgreement:
    @pytest.mark.parametrize("width", [3, 4, 8, 12])
    def test_csa_exact_agreement(self, width):
        gen = csa_multiplier(width)
        functional = detect_xor_maj(gen.aig)
        structural = detect_xor_maj_structural(gen.aig)
        assert set(structural.xor_roots) == set(functional.xor_roots)
        assert set(structural.maj_roots) == set(functional.maj_roots)

    @pytest.mark.parametrize("width", [4, 8])
    def test_booth_soundness(self, width):
        """Structural detection must be a subset of functional truth."""
        gen = booth_multiplier(width)
        functional = detect_xor_maj(gen.aig)
        structural = detect_xor_maj_structural(gen.aig)
        assert set(structural.xor_roots) <= set(functional.xor_roots)
        assert set(structural.maj_roots) <= set(functional.maj_roots)

    def test_extraction_equivalent_on_csa(self, csa8):
        func_tree = extract_adder_tree(csa8.aig, detect_xor_maj(csa8.aig))
        struct_tree = extract_adder_tree(
            csa8.aig, detect_xor_maj_structural(csa8.aig)
        )
        func_pairs = {(a.sum_var, a.carry_var) for a in func_tree.adders}
        struct_pairs = {(a.sum_var, a.carry_var) for a in struct_tree.adders}
        assert func_pairs == struct_pairs

    def test_structural_is_fast_on_moderate_graph(self):
        import time

        gen = csa_multiplier(24)
        start = time.perf_counter()
        detect_xor_maj_structural(gen.aig)
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0  # linear-time detector; generous CI bound
