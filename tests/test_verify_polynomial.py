"""Property and unit tests for the multilinear polynomial algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.graph import make_lit
from repro.verify.polynomial import Polynomial


def random_poly(rng, num_vars=4, num_terms=5) -> Polynomial:
    terms = {}
    for _ in range(num_terms):
        size = int(rng.integers(0, num_vars + 1))
        monomial = frozenset(rng.choice(num_vars, size=size, replace=False) + 1)
        terms[monomial] = int(rng.integers(-5, 6))
    return Polynomial(terms)


class TestConstruction:
    def test_zero_coefficients_dropped(self):
        poly = Polynomial({frozenset({1}): 0, frozenset(): 3})
        assert poly.num_terms == 1

    def test_constant(self):
        assert Polynomial.constant(0).is_zero()
        assert Polynomial.constant(5).terms == {frozenset(): 5}

    def test_from_literal(self):
        positive = Polynomial.from_literal(make_lit(3, 0))
        negative = Polynomial.from_literal(make_lit(3, 1))
        assert positive.terms == {frozenset({3}): 1}
        assert negative.terms == {frozenset(): 1, frozenset({3}): -1}

    def test_const_literals(self):
        assert Polynomial.from_literal(0).is_zero()
        assert Polynomial.from_literal(1).terms == {frozenset(): 1}


class TestAlgebra:
    def test_add_cancels(self):
        x = Polynomial.variable(1)
        assert (x - x).is_zero()

    def test_idempotence(self):
        x = Polynomial.variable(1)
        assert x * x == x

    def test_complement_squares_to_itself(self):
        notx = Polynomial.from_literal(make_lit(1, 1))
        assert notx * notx == notx

    def test_xor_identity(self):
        # x + y - 2xy evaluates like XOR on 0/1.
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        xor = x + y - (x * y).scale(2)
        for a in (0, 1):
            for b in (0, 1):
                assert xor.evaluate({1: a, 2: b}) == a ^ b

    @settings(max_examples=30)
    @given(seed=st.integers(0, 10_000))
    def test_distributivity(self, seed):
        rng = np.random.default_rng(seed)
        p, q, r = (random_poly(rng) for _ in range(3))
        assert p * (q + r) == p * q + p * r

    @settings(max_examples=30)
    @given(seed=st.integers(0, 10_000))
    def test_mul_commutes_and_matches_eval(self, seed):
        rng = np.random.default_rng(seed)
        p, q = random_poly(rng), random_poly(rng)
        assert p * q == q * p
        assignment = {v: int(rng.integers(0, 2)) for v in range(1, 6)}
        assert (p * q).evaluate(assignment) == p.evaluate(assignment) * q.evaluate(assignment)


class TestSubstitution:
    def test_substitute_variable(self):
        x, y = Polynomial.variable(1), Polynomial.variable(2)
        poly = x * y + x.scale(3)
        # x := 1 - y  =>  (1-y)y + 3(1-y); with y² = y the first product
        # vanishes, leaving 3 - 3y.
        result = poly.substitute(1, Polynomial.constant(1) - y)
        assert result == Polynomial.constant(3) - y.scale(3)

    def test_substitute_absent_var_is_identity(self):
        poly = Polynomial.variable(1) + Polynomial.constant(2)
        assert poly.substitute(9, Polynomial.constant(0)) == poly

    @settings(max_examples=30)
    @given(seed=st.integers(0, 10_000))
    def test_substitution_preserves_evaluation(self, seed):
        """Substituting var := some 0/1-consistent poly must commute with
        evaluation (soundness of backward rewriting)."""
        rng = np.random.default_rng(seed)
        poly = random_poly(rng)
        # Replacement: the AND of vars 5 and 6 (a valid gate polynomial).
        replacement = Polynomial.variable(5) * Polynomial.variable(6)
        substituted = poly.substitute(1, replacement)
        for trial in range(8):
            assignment = {v: int(rng.integers(0, 2)) for v in range(1, 7)}
            assignment[1] = assignment[5] * assignment[6]
            assert substituted.evaluate(assignment) == poly.evaluate(assignment)

    def test_support(self):
        poly = Polynomial({frozenset({1, 2}): 1, frozenset({4}): -1})
        assert poly.support() == {1, 2, 4}
