"""SCA verification tests: positive cases, fault injection, engine modes."""

import pytest

from repro.aig.graph import AIG, lit_not
from repro.generators import booth_multiplier, csa_multiplier
from repro.verify import SCAResult, TermExplosion, signature_polynomial, verify_multiplier


class TestAdderAware:
    @pytest.mark.parametrize("width", [2, 3, 4, 6, 8])
    def test_csa_verifies(self, width):
        result = verify_multiplier(csa_multiplier(width), mode="adder")
        assert result.ok
        assert result.residue_terms == 0

    @pytest.mark.slow
    @pytest.mark.parametrize("style", ["wallace", "dadda"])
    def test_other_reductions_verify(self, style):
        result = verify_multiplier(csa_multiplier(5, style=style), mode="adder")
        assert result.ok

    def test_booth_verifies(self):
        result = verify_multiplier(booth_multiplier(3), mode="adder",
                                   max_terms=1_000_000)
        assert result.ok

    def test_peak_terms_stay_linear_ish(self):
        """Adder-aware rewriting must keep the signature compact: the
        carry-cancellation property (peak ≈ #columns, not exponential)."""
        small = verify_multiplier(csa_multiplier(4), mode="adder")
        large = verify_multiplier(csa_multiplier(8), mode="adder")
        assert large.peak_terms <= small.peak_terms * 8


class TestNaive:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_small_csa_verifies(self, width):
        result = verify_multiplier(csa_multiplier(width), mode="naive")
        assert result.ok

    def test_naive_needs_more_terms_than_adder_aware(self):
        naive = verify_multiplier(csa_multiplier(6), mode="naive",
                                  max_terms=2_000_000)
        smart = verify_multiplier(csa_multiplier(6), mode="adder")
        assert naive.peak_terms > smart.peak_terms

    def test_term_budget_enforced(self):
        with pytest.raises(TermExplosion):
            verify_multiplier(csa_multiplier(8), mode="naive", max_terms=50)


class TestFaultInjection:
    """A buggy multiplier must never verify (soundness)."""

    def _broken_multiplier(self, width=4):
        """Rebuild a multiplier but corrupt one partial product."""
        from repro.generators.adders import reduce_columns, ripple_merge_columns
        from repro.generators.components import AdderTrace
        from repro.generators.multipliers import GeneratedMultiplier

        aig = AIG(name="broken")
        a_bits = aig.add_inputs(width, "a")
        b_bits = aig.add_inputs(width, "b")
        rows = []
        for i, b_lit in enumerate(b_bits):
            row = {}
            for j, a_lit in enumerate(a_bits):
                # Fault: pp[1][1] uses OR instead of AND.
                if i == 1 and j == 1:
                    bit = aig.add_or(a_lit, b_lit)
                else:
                    bit = aig.add_and(a_lit, b_lit)
                row.setdefault(i + j, []).append(bit)
            rows.append(row)
        trace = AdderTrace()
        reduced = reduce_columns(aig, rows, style="array", trace=trace)
        word = ripple_merge_columns(aig, reduced, trace=trace)
        for index, bit in enumerate(word[: 2 * width]):
            aig.add_output(bit, f"p{index}")
        return GeneratedMultiplier(aig, width, "csa", a_bits, b_bits, trace)

    def test_fault_detected_adder_mode(self):
        result = verify_multiplier(self._broken_multiplier(), mode="adder")
        assert not result.ok
        assert result.residue_terms > 0

    def test_fault_detected_naive_mode(self):
        result = verify_multiplier(self._broken_multiplier(3), mode="naive")
        assert not result.ok

    def test_output_swap_detected(self):
        gen = csa_multiplier(3)
        # Swap two product bits.
        gen.aig._outputs[0], gen.aig._outputs[1] = (
            gen.aig._outputs[1],
            gen.aig._outputs[0],
        )
        result = verify_multiplier(gen, mode="adder")
        assert not result.ok

    def test_inverted_output_detected(self):
        gen = csa_multiplier(3)
        gen.aig._outputs[2] = lit_not(gen.aig._outputs[2])
        result = verify_multiplier(gen, mode="adder")
        assert not result.ok


class TestApi:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            verify_multiplier(csa_multiplier(3), mode="magic")

    def test_signature_polynomial_shape(self, csa4):
        signature = signature_polynomial(csa4.aig)
        # One term per non-constant output literal (plus constants merged).
        assert signature.num_terms >= csa4.aig.num_outputs - 1

    def test_result_repr(self):
        result = SCAResult(True, "adder", 10, 20, 0.001)
        assert "VERIFIED" in repr(result)

    def test_verify_with_predicted_tree(self, csa8):
        """Gamora integration hook: verification accepts an external tree."""
        from repro.reasoning import extract_adder_tree

        tree = extract_adder_tree(csa8.aig)
        result = verify_multiplier(csa8, mode="adder", tree=tree)
        assert result.ok
