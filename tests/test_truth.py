"""Unit and property tests for truth-table manipulation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.aig.truth import (
    cofactors,
    expand_truth,
    truth_complement,
    truth_from_function,
    truth_mask,
    truth_support,
    var_truth,
)


class TestBasics:
    def test_masks(self):
        assert truth_mask(1) == 0b11
        assert truth_mask(2) == 0xF
        assert truth_mask(3) == 0xFF

    def test_var_truth_patterns(self):
        assert var_truth(0, 2) == 0b1010
        assert var_truth(1, 2) == 0b1100
        assert var_truth(0, 3) == 0xAA
        assert var_truth(2, 3) == 0xF0

    def test_known_functions(self):
        assert truth_from_function(lambda a, b: a ^ b, 2) == 0b0110
        assert truth_from_function(lambda a, b, c: a ^ b ^ c, 3) == 0x96
        maj = truth_from_function(lambda a, b, c: (a & b) | (a & c) | (b & c), 3)
        assert maj == 0xE8

    def test_complement(self):
        assert truth_complement(0x96, 3) == 0x69
        assert truth_complement(truth_complement(0xE8, 3), 3) == 0xE8


class TestExpand:
    def test_identity_expansion(self):
        assert expand_truth(0b0110, (0, 1), 2) == 0b0110

    def test_expand_single_var(self):
        # x0 expressed over 3 variables at position 2 becomes x2.
        assert expand_truth(0b10, (2,), 3) == var_truth(2, 3)

    def test_expand_xor2_to_three_vars(self):
        xor2 = 0b0110
        expanded = expand_truth(xor2, (0, 1), 3)
        reference = truth_from_function(lambda a, b, c: a ^ b, 3)
        assert expanded == reference

    @given(
        table=st.integers(min_value=0, max_value=0xF),
        pos=st.permutations([0, 1, 2]),
    )
    def test_expansion_preserves_function(self, table, pos):
        """Evaluating the expanded table on any minterm must agree with
        evaluating the source table on the projected minterm."""
        positions = tuple(sorted(pos[:2]))
        expanded = expand_truth(table, positions, 3)
        for minterm in range(8):
            src = 0
            for i, p in enumerate(positions):
                if minterm & (1 << p):
                    src |= 1 << i
            assert ((expanded >> minterm) & 1) == ((table >> src) & 1)


class TestCofactorsAndSupport:
    def test_cofactors_of_xor(self):
        neg, pos = cofactors(0x96, 0, 3)
        # XOR3 cofactored on x0: both cofactors are XOR2-like over x1,x2.
        assert neg == truth_from_function(lambda a, b, c: b ^ c, 3)
        assert pos == truth_from_function(lambda a, b, c: 1 ^ b ^ c, 3)

    def test_support_full_and_partial(self):
        assert truth_support(0x96, 3) == (0, 1, 2)
        only_x2 = var_truth(2, 3)
        assert truth_support(only_x2, 3) == (2,)
        assert truth_support(0, 3) == ()
        assert truth_support(truth_mask(3), 3) == ()

    @given(st.integers(min_value=0, max_value=0xFF))
    def test_shannon_expansion(self, table):
        """f = ¬x·f0 + x·f1 must reconstruct f exactly (Shannon)."""
        for index in range(3):
            neg, pos = cofactors(table, index, 3)
            x = var_truth(index, 3)
            rebuilt = (truth_complement(x, 3) & neg) | (x & pos)
            assert rebuilt == table

    @given(st.integers(min_value=0, max_value=0xFF))
    def test_cofactors_remove_dependence(self, table):
        for index in range(3):
            neg, pos = cofactors(table, index, 3)
            assert index not in truth_support(neg, 3)
            assert index not in truth_support(pos, 3)
