"""Cross-layer fuzzing with random AIGs (hypothesis-driven).

Each property pushes arbitrary well-formed netlists through a whole
subsystem and asserts a semantic invariant, catching interactions that
multiplier-shaped tests would never reach: unusual polarities, dangling
logic, constant outputs, reconvergent fan-in.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import (
    dumps_aag,
    enumerate_cuts,
    loads_aag,
    simulation_equivalent,
)
from repro.aig.cuts import node_cuts
from repro.aig.graph import lit_var
from repro.aig.simulate import exhaustive_simulate
from repro.techmap import map_aig, mcnc_reduced, netlist_to_aig, simulate_netlist
from repro.utils.random_circuits import random_aig
from repro.verify.cec import build_output_bdds

SEEDS = st.integers(0, 100_000)


class TestAigerFuzz:
    @settings(max_examples=40, deadline=None)
    @given(seed=SEEDS)
    def test_ascii_roundtrip_preserves_function(self, seed):
        aig = random_aig(num_inputs=5, num_ands=25, num_outputs=3, seed=seed,
                         allow_constants=True)
        parsed = loads_aag(dumps_aag(aig))
        assert simulation_equivalent(aig, parsed)

    @settings(max_examples=20, deadline=None)
    @given(seed=SEEDS)
    def test_binary_roundtrip_preserves_function(self, seed, tmp_path_factory):
        from repro.aig import read_aiger, write_aig

        aig = random_aig(num_inputs=4, num_ands=20, num_outputs=2, seed=seed)
        path = tmp_path_factory.mktemp("fuzz") / "x.aig"
        write_aig(aig, path)
        assert simulation_equivalent(aig, read_aiger(path))


class TestCutFuzz:
    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS)
    def test_cut_functions_match_simulation(self, seed):
        """Every enumerated cut's truth table must agree with exhaustive
        simulation of the cone it claims to summarize."""
        aig = random_aig(num_inputs=5, num_ands=20, num_outputs=2, seed=seed)
        sim = exhaustive_simulate_all_vars(aig)
        for var, cuts in enumerate(enumerate_cuts(aig, k=3, max_cuts=6)):
            for cut in cuts:
                if cut.size < 1 or var == 0:
                    continue
                for minterm in range(1 << cut.size):
                    leaf_values = {
                        leaf: (minterm >> i) & 1
                        for i, leaf in enumerate(cut.leaves)
                    }
                    # Find a global input pattern consistent with the leaf
                    # assignment; skip if none exists (leaves can be
                    # internally correlated).
                    pattern = _find_pattern(aig, sim, leaf_values)
                    if pattern is None:
                        continue
                    expected = (sim[var] >> pattern) & 1
                    got = (cut.truth >> minterm) & 1
                    assert got == expected

    @settings(max_examples=15, deadline=None)
    @given(seed=SEEDS)
    def test_node_cuts_subset_of_global(self, seed):
        aig = random_aig(num_inputs=4, num_ands=15, num_outputs=2, seed=seed)
        global_cuts = enumerate_cuts(aig, k=3, max_cuts=6)
        for var in aig.and_vars():
            local = {c.leaves: c.truth for c in node_cuts(aig, var, k=3, max_cuts=6)}
            for cut in global_cuts[var]:
                if cut.leaves in local:
                    assert local[cut.leaves] == cut.truth


def exhaustive_simulate_all_vars(aig):
    """Truth table (as int) of every variable over all input patterns."""
    from repro.aig.simulate import exhaustive_patterns

    patterns = exhaustive_patterns(aig.num_inputs)
    total = 1 << aig.num_inputs
    from repro.aig.simulate import simulate as _sim
    import numpy as _np

    # simulate() returns outputs only; recompute per-var tables directly.
    values = {0: 0}
    mask = (1 << total) - 1
    tables = {}
    for i, var in enumerate(aig.input_vars()):
        tables[var] = int(patterns[i, 0]) & mask if total <= 64 else None
    if total > 64:
        raise AssertionError("fuzz tests keep inputs <= 6")
    from repro.aig.graph import lit_neg

    for var, f0, f1 in aig.iter_ands():
        t0 = tables[lit_var(f0)]
        if lit_neg(f0):
            t0 = ~t0 & mask
        t1 = tables[lit_var(f1)]
        if lit_neg(f1):
            t1 = ~t1 & mask
        tables[var] = t0 & t1
    return tables


def _find_pattern(aig, tables, leaf_values):
    """An input minterm where every leaf takes its requested value."""
    total = 1 << aig.num_inputs
    for pattern in range(total):
        if all((tables[leaf] >> pattern) & 1 == value
               for leaf, value in leaf_values.items()):
            return pattern
    return None


class TestMapperFuzz:
    @settings(max_examples=20, deadline=None)
    @given(seed=SEEDS)
    def test_mapping_random_logic_is_equivalent(self, seed):
        aig = random_aig(num_inputs=5, num_ands=30, num_outputs=3, seed=seed,
                         allow_constants=True)
        netlist = map_aig(aig, mcnc_reduced(), use_multi_output=False)
        from repro.utils.rng import seeded_rng

        rng = seeded_rng(seed)
        words = rng.integers(0, 1 << 64, size=(aig.num_inputs, 2), dtype=np.uint64)
        from repro.aig.simulate import simulate

        assert np.array_equal(
            simulate(aig, words), simulate_netlist(netlist, words)
        )
        assert simulation_equivalent(aig, netlist_to_aig(netlist))


class TestBddFuzz:
    @settings(max_examples=20, deadline=None)
    @given(seed=SEEDS)
    def test_bdd_matches_exhaustive_simulation(self, seed):
        aig = random_aig(num_inputs=5, num_ands=25, num_outputs=3, seed=seed)
        manager, refs = build_output_bdds(aig)
        out = exhaustive_simulate(aig)
        total = 1 << aig.num_inputs
        for row, ref in enumerate(refs):
            table = int(out[row, 0]) & ((1 << total) - 1)
            for minterm in range(total):
                bits = [(minterm >> i) & 1 for i in range(aig.num_inputs)]
                assert manager.evaluate(ref, bits) == (table >> minterm) & 1
