"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def mult_file(tmp_path):
    path = tmp_path / "mult.aag"
    assert main(["gen", str(path), "--width", "4"]) == 0
    return path


class TestGenStats:
    def test_gen_writes_readable_netlist(self, tmp_path, capsys):
        path = tmp_path / "fresh.aag"
        assert main(["gen", str(path), "--width", "4"]) == 0
        assert path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_gen_binary_format(self, tmp_path):
        path = tmp_path / "m.aig"
        assert main(["gen", str(path), "--width", "3", "--kind", "booth"]) == 0
        assert path.read_bytes().startswith(b"aig")

    def test_stats(self, mult_file, capsys):
        assert main(["stats", str(mult_file)]) == 0
        out = capsys.readouterr().out
        assert "ands" in out and "depth" in out

    def test_gen_with_style(self, tmp_path):
        path = tmp_path / "w.aag"
        assert main(["gen", str(path), "--width", "4", "--style", "wallace"]) == 0


class TestExtract:
    def test_extract_reports_adders(self, mult_file, capsys):
        assert main(["extract", str(mult_file)]) == 0
        out = capsys.readouterr().out
        assert "FA" in out and "HA" in out


class TestTrainReason:
    def test_train_then_reason(self, tmp_path, capsys):
        model = tmp_path / "model.npz"
        assert main(["train", str(model), "--width", "6", "--epochs", "60"]) == 0
        assert model.exists()
        netlist = tmp_path / "target.aag"
        assert main(["gen", str(netlist), "--width", "8"]) == 0
        assert main(["reason", str(model), str(netlist)]) == 0
        out = capsys.readouterr().out
        assert "adder tree" in out


class TestBatchReason:
    @pytest.fixture(scope="class")
    def trained_model(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("batch") / "model.npz"
        assert main(["train", str(path), "--width", "6", "--epochs", "40"]) == 0
        return path

    def test_batch_reason_stream_with_repeats(self, trained_model, tmp_path,
                                              capsys):
        small = tmp_path / "small.aag"
        large = tmp_path / "large.aag"
        assert main(["gen", str(small), "--width", "4"]) == 0
        assert main(["gen", str(large), "--width", "6"]) == 0
        capsys.readouterr()
        assert main([
            "batch-reason", str(trained_model),
            str(small), str(large), str(small),  # repeated design in stream
            "--compare-sequential",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("FA") == 3  # one summary line per netlist
        assert "batch=3 unique=2" in out  # dedup of the repeated design
        assert "graph cache" in out and "result cache" in out
        assert "speedup" in out

    def test_batch_reason_sharded_with_workers(self, trained_model, tmp_path,
                                               capsys):
        """The scaling knobs: tiny shard budget + 2 post-processing workers."""
        paths = []
        for width in (4, 5):
            path = tmp_path / f"m{width}.aag"
            assert main(["gen", str(path), "--width", str(width)]) == 0
            paths.append(str(path))
        capsys.readouterr()
        assert main([
            "batch-reason", str(trained_model), *paths,
            "--max-shard-bytes", "1", "--postprocess-workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("FA") == 2
        assert "shards=2" in out  # 1-byte budget: every circuit its own shard
        from repro.serve import fork_available

        if fork_available():
            assert "workers=2" in out

    def test_batch_reason_cache_dir_round_trip(self, trained_model, tmp_path,
                                               capsys):
        """--cache-dir: a fresh service restart keeps its steady-state hits."""
        netlist = tmp_path / "m4.aag"
        assert main(["gen", str(netlist), "--width", "4"]) == 0
        cache_dir = tmp_path / "result-cache"
        capsys.readouterr()
        assert main([
            "batch-reason", str(trained_model), str(netlist),
            "--cache-dir", str(cache_dir),
        ]) == 0
        first = capsys.readouterr().out
        assert "loaded 0 entries" in first
        assert "saved 1 new entries" in first
        assert "graph cache: loaded 0 entries" in first
        assert "graph cache: saved 1 new entries" in first
        assert list(cache_dir.glob("*.npz"))
        assert list((cache_dir / "graphs").glob("*.npz"))
        # Second run = new process in real life: everything served from disk.
        assert main([
            "batch-reason", str(trained_model), str(netlist),
            "--cache-dir", str(cache_dir),
        ]) == 0
        second = capsys.readouterr().out
        assert "loaded 1 entries" in second
        assert "result_hits=1" in second
        assert "saved 0 new entries" in second
        assert "graph cache: loaded 1 entries" in second
        assert "graph cache: saved 0 new entries" in second

    def test_batch_reason_unusable_cache_dir_is_clean_error(self, trained_model,
                                                            tmp_path, capsys):
        netlist = tmp_path / "m4.aag"
        assert main(["gen", str(netlist), "--width", "4"]) == 0
        blocker = tmp_path / "a-file"
        blocker.write_text("not a directory")
        capsys.readouterr()
        assert main([
            "batch-reason", str(trained_model), str(netlist),
            "--cache-dir", str(blocker / "sub"),
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("batch-reason: cannot use cache dir")
        assert len(err.strip().splitlines()) == 1  # one line, no traceback
        # A dir with foreign npz data (no stamp) fails before the batch runs.
        foreign = tmp_path / "datasets"
        foreign.mkdir()
        (foreign / "data.npz").write_bytes(b"user data")
        assert main([
            "batch-reason", str(trained_model), str(netlist),
            "--cache-dir", str(foreign),
        ]) == 2
        captured = capsys.readouterr()
        assert "no result-cache stamp" in captured.err
        assert "FA" not in captured.out  # refused before reasoning anything
        assert (foreign / "data.npz").read_bytes() == b"user data"

    def test_batch_reason_no_netlists_is_clean_error(self, trained_model,
                                                     capsys):
        assert main(["batch-reason", str(trained_model)]) == 2
        err = capsys.readouterr().err
        assert err.strip() == "batch-reason: no netlists given"

    def test_batch_reason_unreadable_file_is_clean_error(self, trained_model,
                                                         tmp_path, capsys):
        good = tmp_path / "good.aag"
        assert main(["gen", str(good), "--width", "4"]) == 0
        missing = tmp_path / "missing.aag"
        garbage = tmp_path / "garbage.aag"
        garbage.write_text("this is not an AIGER file\n")
        capsys.readouterr()
        for bad in (missing, garbage):
            assert main(["batch-reason", str(trained_model),
                         str(good), str(bad)]) == 2
            err = capsys.readouterr().err
            assert err.startswith(f"batch-reason: cannot read {bad}")
            assert len(err.strip().splitlines()) == 1  # one line, no traceback


class TestMapCec:
    def test_map_reports_cells(self, mult_file, tmp_path, capsys):
        out_path = tmp_path / "mapped.aag"
        assert main(["map", str(mult_file), "--library", "asap7",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "FAx1" in out
        assert out_path.exists()

    def test_cec_equivalent(self, mult_file, tmp_path, capsys):
        mapped = tmp_path / "mapped.aag"
        main(["map", str(mult_file), "--out", str(mapped)])
        capsys.readouterr()
        assert main(["cec", str(mult_file), str(mapped)]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_cec_different_exit_code(self, mult_file, tmp_path, capsys):
        other = tmp_path / "other.aag"
        main(["gen", str(other), "--width", "4", "--kind", "booth"])
        capsys.readouterr()
        # Same interface (4-bit multipliers) but CSA vs Booth are
        # functionally identical... so corrupt by using width 4 vs 4 booth:
        # both compute a*b — they ARE equivalent. Use a different width
        # reduction: build a squarer-like mismatch instead.
        from repro.aig import AIG, write_aag

        wrong = AIG(name="wrong")
        lits = wrong.add_inputs(8)
        for k in range(8):
            wrong.add_output(wrong.add_and(lits[k], lits[(k + 1) % 8]))
        path = tmp_path / "wrong.aag"
        write_aag(wrong, path)
        code = main(["cec", str(mult_file), str(path)])
        assert code == 2


class TestVerify:
    def test_verify_ok(self, capsys):
        assert main(["verify", "--width", "4"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_verify_naive_small(self, capsys):
        assert main(["verify", "--width", "3", "--mode", "naive"]) == 0


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["synthesize"])
