"""Tests for bit-parallel simulation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aig import AIG, lit_not
from repro.aig.simulate import (
    evaluate_bits,
    exhaustive_patterns,
    exhaustive_simulate,
    random_simulate,
    simulate,
    simulation_equivalent,
)


def xor_aig():
    aig = AIG()
    a, b = aig.add_inputs(2)
    aig.add_output(aig.add_xor(a, b))
    return aig


class TestExhaustive:
    def test_patterns_are_projections(self):
        patterns = exhaustive_patterns(3)
        for i in range(3):
            for minterm in range(8):
                bit = (int(patterns[i, 0]) >> minterm) & 1
                assert bit == (minterm >> i) & 1

    def test_patterns_multi_word(self):
        patterns = exhaustive_patterns(7)  # 128 patterns, 2 words
        assert patterns.shape == (7, 2)
        for minterm in (0, 63, 64, 127):
            word, offset = divmod(minterm, 64)
            for i in range(7):
                bit = (int(patterns[i, word]) >> offset) & 1
                assert bit == (minterm >> i) & 1

    def test_exhaustive_xor(self):
        out = exhaustive_simulate(xor_aig())
        assert int(out[0, 0]) == 0b0110

    def test_too_many_inputs_rejected(self):
        with pytest.raises(ValueError):
            exhaustive_patterns(25)


class TestSimulate:
    def test_shape_validation(self):
        aig = xor_aig()
        with pytest.raises(ValueError):
            simulate(aig, np.zeros((3, 1), dtype=np.uint64))

    def test_complemented_output(self):
        aig = AIG()
        a = aig.add_input()
        aig.add_output(lit_not(a))
        out = exhaustive_simulate(aig)
        assert int(out[0, 0]) == 0b01  # ¬x0 truth table

    def test_random_simulation_deterministic(self):
        aig = xor_aig()
        in1, out1 = random_simulate(aig, num_words=2, seed=11)
        in2, out2 = random_simulate(aig, num_words=2, seed=11)
        assert np.array_equal(in1, in2)
        assert np.array_equal(out1, out2)

    @given(bits=st.tuples(st.integers(0, 1), st.integers(0, 1), st.integers(0, 1)))
    def test_evaluate_bits_matches_python(self, bits):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        aig.add_output(aig.add_and(aig.add_or(a, b), c))
        x, y, z = bits
        assert evaluate_bits(aig, [x, y, z]) == [(x | y) & z]


class TestEquivalence:
    def test_equivalent_rebuilt_xor(self):
        left = xor_aig()
        right = AIG()
        a, b = right.add_inputs(2)
        # x ⊕ y as (x+y)·¬(x·y) — different structure, same function.
        right.add_output(right.add_and(right.add_or(a, b), right.add_nand(a, b)))
        assert simulation_equivalent(left, right)

    def test_not_equivalent(self):
        left = xor_aig()
        right = AIG()
        a, b = right.add_inputs(2)
        right.add_output(right.add_and(a, b))
        assert not simulation_equivalent(left, right)

    def test_interface_mismatch(self):
        left = xor_aig()
        right = AIG()
        a = right.add_input()
        right.add_output(a)
        assert not simulation_equivalent(left, right)

    def test_large_random_equivalence(self, csa8):
        # A multiplier is equivalent to itself rebuilt (trivially) and the
        # random path (>14 inputs) is exercised.
        assert simulation_equivalent(csa8.aig, csa8.aig, num_words=4)
