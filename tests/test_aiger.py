"""Round-trip and format tests for AIGER I/O."""

from pathlib import Path

import pytest

from repro.aig import AIG, dumps_aag, loads_aag, read_aiger, simulation_equivalent, write_aag, write_aig

FIXTURES = Path(__file__).resolve().parent / "fixtures"
GOLDEN_NAMES = ["toy_xor3", "half_adder", "csa2_mult"]


def toy_aig():
    aig = AIG(name="toy")
    a = aig.add_input("a")
    b = aig.add_input("b")
    c = aig.add_input("c")
    aig.add_output(aig.add_xor(aig.add_and(a, b), c), "y")
    return aig


class TestAscii:
    def test_header(self):
        text = dumps_aag(toy_aig())
        header = text.splitlines()[0].split()
        assert header[0] == "aag"
        assert header[2] == "3"  # inputs
        assert header[3] == "0"  # latches

    def test_roundtrip_function(self):
        original = toy_aig()
        parsed = loads_aag(dumps_aag(original))
        assert simulation_equivalent(original, parsed)

    def test_roundtrip_symbols(self):
        parsed = loads_aag(dumps_aag(toy_aig()))
        assert parsed.input_names == ["a", "b", "c"]
        assert parsed.output_names == ["y"]

    def test_roundtrip_multiplier(self, csa4, tmp_path):
        path = tmp_path / "mult.aag"
        write_aag(csa4.aig, path)
        parsed = read_aiger(path)
        assert simulation_equivalent(csa4.aig, parsed)
        assert parsed.num_ands == csa4.aig.num_ands

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            loads_aag("")

    def test_latches_rejected(self):
        with pytest.raises(ValueError):
            loads_aag("aag 1 0 1 0 0\n2 3\n")


class TestBinary:
    def test_roundtrip_binary(self, csa4, tmp_path):
        path = tmp_path / "mult.aig"
        write_aig(csa4.aig, path)
        parsed = read_aiger(path)
        assert simulation_equivalent(csa4.aig, parsed)
        assert parsed.num_ands == csa4.aig.num_ands
        assert parsed.input_names == csa4.aig.input_names

    def test_binary_roundtrip_booth(self, booth4, tmp_path):
        path = tmp_path / "booth.aig"
        write_aig(booth4.aig, path)
        parsed = read_aiger(path)
        assert simulation_equivalent(booth4.aig, parsed)

    def test_binary_smaller_than_ascii(self, csa8, tmp_path):
        ascii_path = tmp_path / "m.aag"
        binary_path = tmp_path / "m.aig"
        write_aag(csa8.aig, ascii_path)
        write_aig(csa8.aig, binary_path)
        assert binary_path.stat().st_size < ascii_path.stat().st_size

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.aig"
        path.write_bytes(b"not an aiger file")
        with pytest.raises(ValueError):
            read_aiger(path)

    def test_truncated_binary_rejected(self, csa4, tmp_path):
        path = tmp_path / "trunc.aig"
        write_aig(csa4.aig, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError):
            read_aiger(path)


class TestGoldenFiles:
    """Checked-in ``.aag`` fixtures pin the on-disk format: any writer or
    parser change that alters the bytes of a round-trip fails here."""

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_parse_serialize_parse_is_byte_stable(self, name):
        text = (FIXTURES / f"{name}.aag").read_text()
        once = dumps_aag(loads_aag(text, name=name))
        assert once == text  # the fixture is a serialization fixed point
        twice = dumps_aag(loads_aag(once, name=name))
        assert twice == once

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_golden_function_preserved(self, name):
        path = FIXTURES / f"{name}.aag"
        parsed = read_aiger(path)
        assert parsed.name == name
        assert simulation_equivalent(parsed, loads_aag(dumps_aag(parsed), name=name))

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_golden_binary_round_trip(self, name, tmp_path):
        """ASCII golden -> binary -> parse preserves structure exactly."""
        original = read_aiger(FIXTURES / f"{name}.aag")
        binary_path = tmp_path / f"{name}.aig"
        write_aig(original, binary_path)
        parsed = read_aiger(binary_path)
        assert dumps_aag(parsed) == dumps_aag(original)

    def test_golden_half_adder_shape(self):
        parsed = read_aiger(FIXTURES / "half_adder.aag")
        assert parsed.num_inputs == 2
        assert parsed.num_outputs == 2
        assert parsed.output_names == ["sum", "carry"]
