"""Round-trip and format tests for AIGER I/O."""

import pytest

from repro.aig import AIG, dumps_aag, loads_aag, read_aiger, simulation_equivalent, write_aag, write_aig


def toy_aig():
    aig = AIG(name="toy")
    a = aig.add_input("a")
    b = aig.add_input("b")
    c = aig.add_input("c")
    aig.add_output(aig.add_xor(aig.add_and(a, b), c), "y")
    return aig


class TestAscii:
    def test_header(self):
        text = dumps_aag(toy_aig())
        header = text.splitlines()[0].split()
        assert header[0] == "aag"
        assert header[2] == "3"  # inputs
        assert header[3] == "0"  # latches

    def test_roundtrip_function(self):
        original = toy_aig()
        parsed = loads_aag(dumps_aag(original))
        assert simulation_equivalent(original, parsed)

    def test_roundtrip_symbols(self):
        parsed = loads_aag(dumps_aag(toy_aig()))
        assert parsed.input_names == ["a", "b", "c"]
        assert parsed.output_names == ["y"]

    def test_roundtrip_multiplier(self, csa4, tmp_path):
        path = tmp_path / "mult.aag"
        write_aag(csa4.aig, path)
        parsed = read_aiger(path)
        assert simulation_equivalent(csa4.aig, parsed)
        assert parsed.num_ands == csa4.aig.num_ands

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            loads_aag("")

    def test_latches_rejected(self):
        with pytest.raises(ValueError):
            loads_aag("aag 1 0 1 0 0\n2 3\n")


class TestBinary:
    def test_roundtrip_binary(self, csa4, tmp_path):
        path = tmp_path / "mult.aig"
        write_aig(csa4.aig, path)
        parsed = read_aiger(path)
        assert simulation_equivalent(csa4.aig, parsed)
        assert parsed.num_ands == csa4.aig.num_ands
        assert parsed.input_names == csa4.aig.input_names

    def test_binary_roundtrip_booth(self, booth4, tmp_path):
        path = tmp_path / "booth.aig"
        write_aig(booth4.aig, path)
        parsed = read_aiger(path)
        assert simulation_equivalent(booth4.aig, parsed)

    def test_binary_smaller_than_ascii(self, csa8, tmp_path):
        ascii_path = tmp_path / "m.aag"
        binary_path = tmp_path / "m.aig"
        write_aag(csa8.aig, ascii_path)
        write_aig(csa8.aig, binary_path)
        assert binary_path.stat().st_size < ascii_path.stat().st_size

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.aig"
        path.write_bytes(b"not an aiger file")
        with pytest.raises(ValueError):
            read_aiger(path)

    def test_truncated_binary_rejected(self, csa4, tmp_path):
        path = tmp_path / "trunc.aig"
        write_aig(csa4.aig, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError):
            read_aiger(path)
