"""Kernel backend registry semantics and numpy/numba bit-identity.

Two invariant families:

* **Registry semantics** — selection precedence (``set_backend`` beats
  ``REPRO_KERNEL`` beats ``auto``), graceful degradation (an explicit
  ``numba`` request without numba warns and serves numpy — never an
  ImportError on a serving path), custom test backends with per-kernel
  numpy fallback, dispatch counting, and the one shared scalar-levels
  cutoff constant.  These run everywhere.
* **Differential bit-identity** — with numba installed, every kernel must
  produce *exactly* the numpy reference's output (same arrays, same
  dtypes-relevant values, same ordering) over the adder-tree circuit
  families and the degenerate graphs.  Bit-identity is what lets the
  result cache ignore the backend entirely, which the cache-sharing
  regression test at the bottom pins structurally.
"""

import numpy as np
import pytest

from repro.aig import AIG
from repro.aig.fast_cuts import enumerate_cuts_arrays
from repro.generators import booth_multiplier, csa_multiplier
from repro.generators.adders import ripple_carry_adder
from repro.kernels import registry
from repro.kernels.registry import (
    BACKEND_ENV,
    KERNEL_NAMES,
    LEVELS_SCALAR_CUTOFF,
    active_backend,
    dispatch_counts,
    get_kernel,
    kernel_stats,
    numba_available,
    register,
    requested_backend,
    reset_dispatch_counts,
    resolve_backend,
    set_backend,
    warmup,
)
from repro.reasoning.fast_pairing import fast_extract_adder_tree
from repro.reasoning.wordlevel import analyze_adder_tree
from repro.utils.random_circuits import random_aig

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed"
)


@pytest.fixture(autouse=True)
def clean_registry(monkeypatch):
    """Every test sees (and leaves behind) a pristine backend selection."""
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    set_backend(None)
    reset_dispatch_counts()
    saved = dict(registry._impls)
    yield
    with registry._lock:
        registry._impls.clear()
        registry._impls.update(saved)
        registry._loaded_backends.intersection_update({"numpy", "numba"})
    # Teardown runs before the env monkeypatch is undone; resolve quietly.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        set_backend(None)
    reset_dispatch_counts()


def ripple(width: int) -> AIG:
    aig = AIG()
    a_bits = aig.add_inputs(width, "a")
    b_bits = aig.add_inputs(width, "b")
    sums, cout = ripple_carry_adder(aig, a_bits, b_bits)
    for s in sums:
        aig.add_output(s)
    aig.add_output(cout)
    return aig


def one_level() -> AIG:
    aig = AIG()
    a, b = aig.add_inputs(2)
    aig.add_output(aig.add_and(a, b))
    return aig


def empty() -> AIG:
    aig = AIG()
    aig.add_inputs(3)
    return aig


# Fixture families: the adder-tree shapes the paper cares about plus the
# degenerate edges (single AND, no ANDs at all) and reconvergent noise.
CIRCUITS = {
    "ripple8": lambda: ripple(8),
    "csa8_array": lambda: csa_multiplier(8).aig,
    "csa8_wallace": lambda: csa_multiplier(8, style="wallace").aig,
    "csa6_dadda": lambda: csa_multiplier(6, style="dadda").aig,
    "booth8": lambda: booth_multiplier(8).aig,
    "random0": lambda: random_aig(num_inputs=5, num_ands=60,
                                  num_outputs=3, seed=0),
    "random1": lambda: random_aig(num_inputs=4, num_ands=80,
                                  num_outputs=2, seed=1),
    "one_level": one_level,
    "empty": empty,
}


# ---------------------------------------------------------------------------
# Registry semantics (run with or without numba)
# ---------------------------------------------------------------------------

class TestRegistrySelection:
    def test_default_is_auto(self):
        assert requested_backend() == "auto"
        assert active_backend() in ("numpy", "numba")

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        set_backend(None)  # re-read the env
        assert requested_backend() == "numpy"
        assert active_backend() == "numpy"

    def test_set_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "auto")
        assert set_backend("numpy") == "numpy"
        assert requested_backend() == "numpy"
        assert set_backend(None) == resolve_backend("auto")

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_backend("fortran")

    def test_register_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            register("not_a_kernel", "numpy")

    def test_explicit_numba_missing_falls_back_with_warning(self, monkeypatch):
        # Simulate an environment without numba regardless of this one.
        monkeypatch.setattr(registry, "numba_available", lambda: False)
        real_load = registry._load_backend
        monkeypatch.setattr(
            registry, "_load_backend",
            lambda b: False if b == "numba" else real_load(b),
        )
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert set_backend("numba") == "numpy"
        # auto quietly resolves to numpy, no warning.
        assert set_backend("auto") == "numpy"

    def test_serving_path_never_importerror(self, monkeypatch):
        """REPRO_KERNEL=numba with numba absent must still serve."""
        monkeypatch.setenv(BACKEND_ENV, "numba")
        monkeypatch.setattr(registry, "numba_available", lambda: False)
        real_load = registry._load_backend
        monkeypatch.setattr(
            registry, "_load_backend",
            lambda b: False if b == "numba" else real_load(b),
        )
        with pytest.warns(RuntimeWarning):
            set_backend(None)
        assert active_backend() == "numpy"
        record = warmup()  # the daemon boot path
        assert record["backend"] == "numpy"
        tree = fast_extract_adder_tree(csa_multiplier(4).aig)
        assert tree.num_full_adders > 0


class TestDispatchCounting:
    def test_pipeline_counts_every_kernel(self):
        set_backend("numpy")
        reset_dispatch_counts()
        aig = csa_multiplier(6).aig
        tree = fast_extract_adder_tree(aig)
        analyze_adder_tree(aig, tree)
        counts = dispatch_counts()
        for kernel in ("merge_level", "cone_sweep", "fa_join",
                       "kahn_propagate"):
            assert counts[kernel]["numpy"] > 0, kernel
        reset_dispatch_counts()
        assert dispatch_counts() == {}

    def test_kernel_stats_shape(self):
        set_backend("numpy")
        stats = kernel_stats()
        assert stats["backend"] == "numpy"
        assert stats["requested"] == "numpy"
        assert isinstance(stats["numba_available"], bool)
        assert set(stats) == {"backend", "requested", "numba_available",
                              "warmup", "dispatch_counts"}

    def test_warmup_runs_all_kernels_then_resets(self):
        set_backend("numpy")
        record = warmup()
        assert record["backend"] == "numpy"
        assert record["seconds"] >= 0
        # Counters were reset after the warmup's own dispatches.
        assert dispatch_counts() == {}
        assert kernel_stats()["warmup"]["backend"] == "numpy"


class TestCustomBackends:
    def test_partial_backend_falls_back_per_kernel(self):
        calls = []

        @register("fa_join", "probe")
        def probe_join(maj_var, maj_key, xor_var, xor_key):
            calls.append(len(maj_var))
            from repro.kernels.numpy_backend import fa_join
            return fa_join(maj_var, maj_key, xor_var, xor_key)

        set_backend("probe")
        assert active_backend() == "probe"
        aig = csa_multiplier(5).aig
        tree = fast_extract_adder_tree(aig)
        assert tree.num_full_adders > 0
        assert calls, "custom fa_join was not dispatched"
        counts = dispatch_counts()
        # The implemented kernel is counted under the custom backend; the
        # rest transparently served (and counted) as numpy.
        assert counts["fa_join"] == {"probe": len(calls)}
        assert counts["merge_level"] == {"numpy":
                                         counts["merge_level"]["numpy"]}
        assert counts["cone_sweep"]["numpy"] > 0

    def test_unknown_kernel_name_raises(self):
        set_backend("numpy")
        with pytest.raises(KeyError):
            get_kernel("transpose")


class TestLevelsCutoff:
    def test_single_shared_constant(self):
        assert AIG._LEVELS_VECTOR_MIN == LEVELS_SCALAR_CUTOFF

    def test_cutoff_still_monkeypatchable(self, monkeypatch):
        """Tests force the vector path by lowering the class attribute."""
        monkeypatch.setattr(AIG, "_LEVELS_VECTOR_MIN", 0)
        set_backend("numpy")
        reset_dispatch_counts()
        aig = csa_multiplier(4).aig
        lev = aig.levels()
        assert dispatch_counts()["kahn_propagate"]["numpy"] == 1
        scalar = [0] * aig.num_vars
        f0, f1 = aig.fanin_arrays()
        for var in range(1 + aig.num_inputs, aig.num_vars):
            scalar[var] = 1 + max(scalar[f0[var] >> 1], scalar[f1[var] >> 1])
        assert lev == scalar


# ---------------------------------------------------------------------------
# kahn_propagate unit tests (numpy reference vs brute force)
# ---------------------------------------------------------------------------

def brute_longest_path(num: int, edges: list[tuple[int, int]],
                       seed: np.ndarray) -> np.ndarray:
    values = seed.astype(np.int64).copy()
    changed = True
    while changed:
        changed = False
        for src, dst in edges:
            relaxed = max(values[dst], values[src] + 1)
            if relaxed != values[dst]:
                values[dst] = relaxed
                changed = True
    return values


def csr_from_edges(num: int, edges: list[tuple[int, int]]):
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    order = np.argsort(src, kind="stable")
    indptr = np.searchsorted(src[order], np.arange(num + 1))
    indegree = np.bincount(dst, minlength=num).astype(np.int64)
    return indptr, dst[order], indegree


@pytest.mark.parametrize("seed", range(5))
def test_kahn_matches_brute_force(seed):
    set_backend("numpy")
    rng = np.random.default_rng(seed)
    num = 30
    edges = [(a, b) for a in range(num) for b in range(a + 1, num)
             if rng.random() < 0.15]
    if not edges:
        edges = [(0, 1)]
    start = rng.integers(0, 3, size=num)
    indptr, consumers, indegree = csr_from_edges(num, edges)
    values = start.astype(np.int64).copy()
    get_kernel("kahn_propagate")(indptr, consumers, indegree, values)
    assert np.array_equal(values, brute_longest_path(num, edges, start))


def test_kahn_empty_graph():
    set_backend("numpy")
    values = np.arange(4, dtype=np.int64)
    get_kernel("kahn_propagate")(
        np.zeros(5, dtype=np.int64), np.zeros(0, dtype=np.int64),
        np.zeros(4, dtype=np.int64), values,
    )
    assert np.array_equal(values, np.arange(4))


# ---------------------------------------------------------------------------
# Differential suite: numba backend must be bit-identical to numpy
# ---------------------------------------------------------------------------

def run_pipeline(aig: AIG, backend: str):
    """Everything the kernels touch, captured under one backend."""
    set_backend(backend)
    cuts = enumerate_cuts_arrays(aig, k=3, max_cuts=10)
    tree = fast_extract_adder_tree(aig)
    report = analyze_adder_tree(aig, tree)
    return cuts, tree, report


@needs_numba
class TestNumbaBitIdentity:
    @pytest.fixture(autouse=True)
    def warm(self):
        warmup("numba")

    @pytest.mark.parametrize("name", sorted(CIRCUITS), ids=str)
    def test_pipeline_identical(self, name):
        build = CIRCUITS[name]
        ref_cuts, ref_tree, ref_report = run_pipeline(build(), "numpy")
        got_cuts, got_tree, got_report = run_pipeline(build(), "numba")
        assert np.array_equal(ref_cuts.leaves, got_cuts.leaves)
        assert np.array_equal(ref_cuts.truths, got_cuts.truths)
        assert np.array_equal(ref_cuts.sizes, got_cuts.sizes)
        assert np.array_equal(ref_cuts.counts, got_cuts.counts)
        assert got_tree.adders == ref_tree.adders
        assert got_tree.consumed == ref_tree.consumed
        assert got_report == ref_report

    @pytest.mark.parametrize("name", sorted(CIRCUITS), ids=str)
    def test_levels_identical(self, name, monkeypatch):
        monkeypatch.setattr(AIG, "_LEVELS_VECTOR_MIN", 0)
        build = CIRCUITS[name]
        set_backend("numpy")
        ref = np.asarray(build().levels_array())
        set_backend("numba")
        got = np.asarray(build().levels_array())
        assert np.array_equal(ref, got)

    def test_numba_actually_dispatches(self):
        set_backend("numba")
        reset_dispatch_counts()
        aig = csa_multiplier(6).aig
        analyze_adder_tree(aig, fast_extract_adder_tree(aig))
        counts = dispatch_counts()
        for kernel in KERNEL_NAMES:
            backends = counts.get(kernel, {})
            assert "numpy" not in backends, (kernel, counts)

    def test_small_pack_limit_identical(self):
        """The compaction path (tiny pack_limit) stays backend-identical."""
        aig = csa_multiplier(6).aig
        set_backend("numpy")
        ref = enumerate_cuts_arrays(aig, max_cuts=6, pack_limit=128)
        set_backend("numba")
        got = enumerate_cuts_arrays(aig, max_cuts=6, pack_limit=128)
        assert np.array_equal(ref.leaves, got.leaves)
        assert np.array_equal(ref.truths, got.truths)
        assert np.array_equal(ref.sizes, got.sizes)
        assert np.array_equal(ref.counts, got.counts)


# ---------------------------------------------------------------------------
# Satellite: backend choice must not fragment the result cache
# ---------------------------------------------------------------------------

class TestCacheSharingAcrossBackends:
    def test_result_cache_hits_across_backends(self):
        """A result computed under one backend is served from cache under
        another: the backend is structurally absent from the options key.

        Uses a numpy-aliasing custom backend so the test runs (and means
        the same thing) whether or not numba is installed; with numba
        present the differential suite above is what makes the aliasing
        sound for the real pair.
        """
        from repro.core import Gamora
        from repro.kernels import numpy_backend
        from repro.learn import TrainConfig
        from repro.serve import ReasoningService

        for kernel in KERNEL_NAMES:
            register(kernel, "mirror")(getattr(numpy_backend, kernel))

        gamora = Gamora(model="shallow", train_config=TrainConfig(epochs=30))
        gamora.fit([csa_multiplier(4)])
        service = ReasoningService(gamora)
        circuit = csa_multiplier(5).aig

        set_backend("numpy")
        service.reason_many([circuit])
        first = service.cache_stats()["result"]
        assert first["misses"] >= 1

        set_backend("mirror")
        service.reason_many([circuit])
        second = service.cache_stats()["result"]
        assert second["hits"] == first["hits"] + 1
        assert second["misses"] == first["misses"]


# ---------------------------------------------------------------------------
# Daemon surfacing
# ---------------------------------------------------------------------------

class TestDaemonSurfacing:
    @pytest.fixture(scope="class")
    def gamora(self):
        from repro.core import Gamora
        from repro.learn import TrainConfig

        model = Gamora(model="shallow", train_config=TrainConfig(epochs=30))
        model.fit([csa_multiplier(4)])
        return model

    def test_ping_and_stats_report_backend(self, gamora):
        from repro.serve import DaemonClient, GamoraDaemon

        set_backend("numpy")
        with GamoraDaemon(gamora) as daemon:
            assert daemon.kernel_warmup is not None
            assert daemon.kernel_warmup["backend"] == "numpy"
            client = DaemonClient(daemon)
            pong = client.ping()
            assert pong["ok"] and pong["kernel_backend"] == "numpy"
            reply = client.reason(csa_multiplier(4).aig, request_id="r1")
            assert reply["ok"]
            assert reply["stats"]["kernel_backend"] == "numpy"
            snap = client.stats()
            kernels = snap["stats"]["kernels"]
            assert kernels["backend"] == "numpy"
            assert kernels["warmup"]["backend"] == "numpy"
            assert kernels["dispatch_counts"], "no dispatches recorded"
