"""Tests for the BDD package and combinational equivalence checking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, lit_not
from repro.generators import csa_multiplier
from repro.techmap import asap7_like, map_unmap, mcnc_reduced
from repro.utils.random_circuits import random_aig
from repro.verify import BDD, build_output_bdds, check_equivalence
from repro.verify.cec import CecResult


class TestBddBasics:
    def test_terminals(self):
        m = BDD(2)
        assert m.evaluate(BDD.TRUE, [0, 0]) == 1
        assert m.evaluate(BDD.FALSE, [1, 1]) == 0

    def test_variable_projection(self):
        m = BDD(3)
        x1 = m.var(1)
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    assert m.evaluate(x1, [a, b, c]) == b

    def test_hash_consing_canonical(self):
        m = BDD(2)
        left = m.apply_and(m.var(0), m.var(1))
        right = m.apply_not(m.apply_or(m.apply_not(m.var(0)), m.apply_not(m.var(1))))
        assert left == right  # same node reference: canonical form

    def test_xor_satcount(self):
        m = BDD(3)
        f = m.apply_xor(m.apply_xor(m.var(0), m.var(1)), m.var(2))
        assert m.count_sat(f) == 4

    def test_any_sat(self):
        m = BDD(3)
        f = m.apply_and(m.var(0), m.apply_not(m.var(2)))
        witness = m.any_sat(f)
        assert witness is not None
        assert m.evaluate(f, witness) == 1
        assert m.any_sat(BDD.FALSE) is None

    def test_support(self):
        m = BDD(4)
        f = m.apply_or(m.var(0), m.var(3))
        assert m.support(f) == {0, 3}

    def test_size_and_bounds(self):
        m = BDD(2)
        f = m.apply_and(m.var(0), m.var(1))
        assert m.size(f) >= 3
        with pytest.raises(ValueError):
            m.var(5)
        with pytest.raises(ValueError):
            BDD(-1)

    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["and", "or", "xor"]),
                      st.integers(0, 3), st.integers(0, 3)),
            min_size=1, max_size=6,
        )
    )
    def test_bdd_matches_truth_semantics(self, ops):
        """Random op chains evaluate identically to direct Boolean eval."""
        m = BDD(4)
        refs = [m.var(i) for i in range(4)]
        for op, i, j in ops:
            if op == "and":
                refs.append(m.apply_and(refs[i % len(refs)], refs[j % len(refs)]))
            elif op == "or":
                refs.append(m.apply_or(refs[i % len(refs)], refs[j % len(refs)]))
            else:
                refs.append(m.apply_xor(refs[i % len(refs)], refs[j % len(refs)]))
        final = refs[-1]
        # Shadow evaluation on all 16 assignments via evaluate().
        count = sum(
            m.evaluate(final, [(k >> b) & 1 for b in range(4)])
            for k in range(16)
        )
        assert m.count_sat(final) == count


class TestBuildOutputBdds:
    def test_multiplier_bdds_match_simulation(self):
        gen = csa_multiplier(3)
        manager, outputs = build_output_bdds(gen.aig)
        for a in range(8):
            for b in range(8):
                bits = [(a >> i) & 1 for i in range(3)] + [
                    (b >> i) & 1 for i in range(3)
                ]
                value = sum(
                    manager.evaluate(ref, bits) << k for k, ref in enumerate(outputs)
                )
                assert value == a * b

    def test_node_limit_enforced(self):
        gen = csa_multiplier(8)
        with pytest.raises(MemoryError):
            build_output_bdds(gen.aig, node_limit=200)


class TestCec:
    def test_mapped_designs_equivalent(self, csa4):
        for library in (mcnc_reduced(), asap7_like()):
            result = check_equivalence(csa4.aig, map_unmap(csa4.aig, library))
            assert result.equivalent
            assert result.exact

    def test_interface_mismatch(self):
        left = AIG()
        left.add_output(left.add_input())
        right = AIG()
        right.add_inputs(2)
        result = check_equivalence(left, right)
        assert not result.equivalent
        assert result.engine == "interface"

    def test_counterexample_is_real(self, csa4):
        from repro.aig.simulate import evaluate_bits

        broken = csa_multiplier(4)
        broken.aig._outputs[2] = lit_not(broken.aig._outputs[2])
        result = check_equivalence(csa4.aig, broken.aig, engine="bdd")
        assert not result.equivalent
        assert result.counterexample is not None
        good = evaluate_bits(csa4.aig, result.counterexample)
        bad = evaluate_bits(broken.aig, result.counterexample)
        assert good[result.failing_output] != bad[result.failing_output]

    def test_engines_agree(self, csa4):
        other = map_unmap(csa4.aig, mcnc_reduced())
        for engine in ("bdd", "exhaustive", "random"):
            result = check_equivalence(csa4.aig, other, engine=engine)
            assert result.equivalent, engine

    def test_random_engine_not_exact(self, csa8):
        other = map_unmap(csa8.aig, mcnc_reduced())
        result = check_equivalence(csa8.aig, other, engine="random")
        assert result.equivalent
        assert not result.exact

    def test_bdd_fallback_on_blowup(self, csa8):
        """auto engine must fall back when multiplier BDDs explode."""
        other = map_unmap(csa8.aig, mcnc_reduced())
        result = check_equivalence(csa8.aig, other, engine="auto",
                                   bdd_node_limit=500)
        assert result.equivalent

    def test_explicit_bdd_blowup_raises(self, csa8):
        other = map_unmap(csa8.aig, mcnc_reduced())
        with pytest.raises(MemoryError):
            check_equivalence(csa8.aig, other, engine="bdd", bdd_node_limit=500)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_aig_self_equivalence(self, seed):
        aig = random_aig(num_inputs=6, num_ands=30, num_outputs=3, seed=seed)
        from repro.aig.transform import cleanup

        result = check_equivalence(aig, cleanup(aig), engine="bdd")
        assert result.equivalent

    def test_repr(self):
        assert "EQUIVALENT" in repr(CecResult(True, "bdd", True, 0.01))
