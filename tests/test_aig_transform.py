"""Tests for AIG structural transformations (cleanup/cone/compose/miter)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import (
    AIG,
    cleanup,
    compose,
    exhaustive_simulate,
    extract_cone,
    lit_not,
    miter,
    simulation_equivalent,
)
from repro.utils.random_circuits import random_aig


class TestCleanup:
    def test_removes_dangling_logic(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        used = aig.add_and(a, b)
        aig.add_and(b, c)  # dangling
        aig.add_output(used)
        cleaned = cleanup(aig)
        assert cleaned.num_ands == 1
        assert simulation_equivalent(aig, cleaned)

    def test_keeps_full_input_interface(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        aig.add_output(aig.add_and(a, b))  # c unused
        cleaned = cleanup(aig)
        assert cleaned.num_inputs == 3

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_cleanup_preserves_function_on_random_aigs(self, seed):
        aig = random_aig(num_inputs=5, num_ands=40, num_outputs=3, seed=seed)
        cleaned = cleanup(aig)
        assert cleaned.num_ands <= aig.num_ands
        assert simulation_equivalent(aig, cleaned)


class TestExtractCone:
    def test_cone_of_single_output(self, csa4):
        cone = extract_cone(csa4.aig, [3])
        assert cone.num_outputs == 1
        assert cone.num_inputs <= csa4.aig.num_inputs
        assert cone.num_ands <= csa4.aig.num_ands

    def test_cone_function_matches(self, csa4):
        index = 4
        cone = extract_cone(csa4.aig, [index])
        # Map cone input order back to parent: compare via simulation over
        # the parent interface projected onto the cone support.
        support_names = cone.input_names
        parent_positions = [csa4.aig.input_names.index(n) for n in support_names]
        full = exhaustive_simulate(cone)
        # Evaluate the parent on patterns where only support inputs vary.
        from repro.aig.simulate import exhaustive_patterns, simulate

        patterns = exhaustive_patterns(cone.num_inputs)
        parent_words = np.zeros((csa4.aig.num_inputs, patterns.shape[1]),
                                dtype=np.uint64)
        for row, pos in enumerate(parent_positions):
            parent_words[pos] = patterns[row]
        parent_out = simulate(csa4.aig, parent_words)[index]
        total = 1 << cone.num_inputs
        mask = np.uint64((1 << total) - 1) if total < 64 else np.uint64(2**64 - 1)
        assert np.array_equal(full[0] & mask, parent_out & mask)

    def test_cone_of_lsb_is_tiny(self, csa8):
        cone = extract_cone(csa8.aig, [0])
        assert cone.num_ands <= 2  # p0 = a0 & b0


class TestCompose:
    def test_parallel_composition(self):
        left = AIG("l")
        a, b = left.add_inputs(2)
        left.add_output(left.add_and(a, b))
        right = AIG("r")
        c, d = right.add_inputs(2)
        right.add_output(right.add_xor(c, d))
        merged = compose(left, right)
        assert merged.num_outputs == 2
        out = exhaustive_simulate(merged)
        assert int(out[0, 0]) == 0b1000
        assert int(out[1, 0]) == 0b0110

    def test_interface_mismatch_rejected(self):
        left = AIG()
        left.add_inputs(2)
        right = AIG()
        right.add_inputs(3)
        with pytest.raises(ValueError):
            compose(left, right)


class TestMiter:
    def test_equivalent_designs_give_constant_zero(self, csa4):
        from repro.techmap import map_unmap, mcnc_reduced

        other = map_unmap(csa4.aig, mcnc_reduced())
        m = miter(csa4.aig, other)
        assert m.num_outputs == 1
        out = exhaustive_simulate(m)
        assert not out.any()

    def test_different_designs_flag_difference(self):
        left = AIG()
        a, b = left.add_inputs(2)
        left.add_output(left.add_and(a, b))
        right = AIG()
        c, d = right.add_inputs(2)
        right.add_output(right.add_or(c, d))
        out = exhaustive_simulate(miter(left, right))
        assert out.any()

    def test_output_count_mismatch_rejected(self):
        left = AIG()
        a = left.add_input()
        left.add_output(a)
        right = AIG()
        b = right.add_input()
        right.add_output(b)
        right.add_output(lit_not(b))
        with pytest.raises(ValueError):
            miter(left, right)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_self_miter_is_zero_on_random_aigs(self, seed):
        aig = random_aig(num_inputs=5, num_ands=25, num_outputs=3, seed=seed)
        out = exhaustive_simulate(miter(aig, aig))
        assert not out.any()


class TestRandomAig:
    def test_interface(self):
        aig = random_aig(num_inputs=4, num_ands=10, num_outputs=2, seed=1)
        assert aig.num_inputs == 4
        assert aig.num_outputs == 2
        assert aig.num_ands <= 10  # folding may collapse some

    def test_deterministic(self):
        first = random_aig(seed=42)
        second = random_aig(seed=42)
        from repro.aig import dumps_aag

        assert dumps_aag(first) == dumps_aag(second)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            random_aig(num_inputs=0)
