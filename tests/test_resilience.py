"""Chaos suite for the serving stack's resilience layer.

Every named fault point gets injected and the stack must keep its
promises: the daemon survives, the affected request resolves with a
*typed* retriable/terminal error (or recovers transparently), and a
follow-up clean request is bit-identical to an unfaulted run.  On top of
the per-point chaos tests, this module unit-tests the primitives
themselves — :class:`FaultPlan` trigger determinism, :class:`RetryPolicy`
backoff/budget, the :class:`Watchdog` — and pins the acceptance
guarantees: an expired deadline provably skips its forward pass, and a
:class:`SocketDaemonClient` with the default retry policy survives a
``queue_full`` burst plus an injected mid-response socket drop.
"""

import json
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.aig.aiger import dumps_aag, read_aiger, write_aig
from repro.core import Gamora
from repro.generators import booth_multiplier, csa_multiplier
from repro.learn import TrainConfig
from repro.serve import (
    DaemonClient,
    DaemonServer,
    DeadlineExceededError,
    FaultPlan,
    GamoraDaemon,
    InjectedFaultError,
    RetryPolicy,
    SchedulerWedgedError,
    SocketDaemonClient,
    Watchdog,
)
from repro.serve import resilience
from repro.serve.resilience import FaultRule

from tests.test_serve_batching import assert_outcome_equal


@pytest.fixture(scope="module")
def gamora():
    model = Gamora(model="shallow", train_config=TrainConfig(epochs=60))
    model.fit([csa_multiplier(6)])
    return model


@pytest.fixture(scope="module")
def circuits():
    return [csa_multiplier(4).aig, csa_multiplier(5).aig,
            booth_multiplier(4).aig]


@pytest.fixture(scope="module")
def sequential(gamora, circuits):
    return [gamora.reason(aig) for aig in circuits]


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No fault plan may ever leak from one test into the next."""
    yield
    resilience.install_plan(None)


def run_threads(count, target):
    threads = [threading.Thread(target=target, args=(i,))
               for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def plan_of(*rules, seed=0):
    return FaultPlan.from_dict({"seed": seed, "faults": list(rules)})


def assert_payload_matches(response, expected):
    assert response["ok"], response
    assert (response["result"]["num_full_adders"]
            == expected.tree.num_full_adders)
    assert (response["result"]["num_half_adders"]
            == expected.tree.num_half_adders)
    assert (response["result"]["num_mismatches"]
            == expected.num_mismatches)


# ======================================================================
class TestFaultPlanParsing:
    def test_requires_faults_list(self):
        with pytest.raises(ValueError, match="'faults' list"):
            FaultPlan.from_dict({"seed": 1})
        with pytest.raises(ValueError, match="'faults' list"):
            FaultPlan.from_dict([])

    def test_rule_requires_point_and_kind(self):
        with pytest.raises(ValueError, match="'point' and 'kind'"):
            plan_of({"point": "infer.forward"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            plan_of({"point": "infer.forward", "kind": "explode"})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault rule keys"):
            plan_of({"point": "infer.forward", "kind": "raise",
                     "when": "later"})

    def test_at_most_one_trigger(self):
        with pytest.raises(ValueError, match="at most one"):
            FaultRule("p", "raise", at=[1], every=2)

    def test_from_json_inline_and_file(self, tmp_path):
        text = ('{"seed": 3, "faults": '
                '[{"point": "server.send", "kind": "drop", "at": [2]}]}')
        inline = FaultPlan.from_json(text)
        path = tmp_path / "plan.json"
        path.write_text(text)
        from_file = FaultPlan.from_json(str(path))
        for plan in (inline, from_file):
            assert plan.seed == 3
            assert plan.rules[0].point == "server.send"
            assert plan.rules[0].at == frozenset([2])

    def test_invalid_json_raises(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json("{not json")


class TestFaultPlanTriggers:
    def test_at_fires_only_listed_hits(self):
        plan = plan_of({"point": "p", "kind": "drop", "at": [2, 4]})
        fired = [plan.fire("p") for _ in range(5)]
        assert fired == [None, "drop", None, "drop", None]

    def test_every_nth_hit(self):
        plan = plan_of({"point": "p", "kind": "drop", "every": 3})
        fired = [plan.fire("p") for _ in range(7)]
        assert fired == [None, None, "drop", None, None, "drop", None]

    def test_default_trigger_is_every_hit(self):
        plan = plan_of({"point": "p", "kind": "drop"})
        assert [plan.fire("p") for _ in range(3)] == ["drop"] * 3

    def test_limit_caps_total_fires(self):
        plan = plan_of({"point": "p", "kind": "drop", "every": 1,
                        "limit": 2})
        assert [plan.fire("p") for _ in range(4)] == \
            ["drop", "drop", None, None]

    def test_rate_is_deterministic_for_a_seed(self):
        def sequence():
            plan = plan_of({"point": "p", "kind": "drop", "rate": 0.3},
                           seed=17)
            return [plan.fire("p") for _ in range(200)]

        first, second = sequence(), sequence()
        assert first == second
        assert "drop" in first and None in first  # rate actually mixes

    def test_unmatched_point_never_fires(self):
        plan = plan_of({"point": "p", "kind": "raise"})
        assert plan.fire("q") is None
        assert plan.stats()[0]["hits"] == 0

    def test_raise_kind(self):
        plan = plan_of({"point": "p", "kind": "raise"})
        with pytest.raises(InjectedFaultError) as info:
            plan.fire("p")
        assert info.value.point == "p"

    def test_memory_kind(self):
        plan = plan_of({"point": "p", "kind": "memory"})
        with pytest.raises(MemoryError):
            plan.fire("p")

    def test_sleep_kind_blocks(self):
        plan = plan_of({"point": "p", "kind": "sleep", "seconds": 0.1})
        started = time.monotonic()
        assert plan.fire("p") == "sleep"
        assert time.monotonic() - started >= 0.1

    def test_stats_count_hits_and_fires(self):
        plan = plan_of({"point": "p", "kind": "corrupt", "at": [2]})
        for _ in range(3):
            plan.fire("p")
        assert plan.stats() == [
            {"point": "p", "kind": "corrupt", "hits": 3, "fires": 1}
        ]


class TestPlanRegistry:
    def test_fire_is_noop_when_unarmed(self, monkeypatch):
        monkeypatch.delenv(resilience.PLAN_ENV, raising=False)
        resilience.install_plan(None)
        assert resilience.fire("infer.forward") is None
        assert resilience.fault_stats() == []

    def test_env_plan_parsed_once_and_armed(self, monkeypatch):
        resilience.install_plan(None)
        monkeypatch.setenv(
            resilience.PLAN_ENV,
            '{"faults": [{"point": "p", "kind": "drop", "at": [1]}]}',
        )
        assert resilience.fire("p") == "drop"
        assert resilience.fire("p") is None  # same cached plan keeps counting
        assert resilience.fault_stats()[0]["hits"] == 2

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(
            resilience.PLAN_ENV,
            '{"faults": [{"point": "p", "kind": "raise"}]}',
        )
        resilience.install_plan(
            plan_of({"point": "p", "kind": "drop"})
        )
        assert resilience.fire("p") == "drop"  # not the env's raise
        resilience.install_plan(None)
        with pytest.raises(InjectedFaultError):
            resilience.fire("p")  # disarming re-enables the env plan


# ======================================================================
class TestRetryPolicy:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_delay_is_full_jitter_under_exponential_ceiling(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                             seed=11)
        for failures in range(1, 8):
            ceiling = min(0.5, 0.1 * 2.0 ** (failures - 1))
            for _ in range(50):
                assert 0.0 <= policy.delay(failures) <= ceiling

    def test_retries_raised_errors_until_success(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, seed=1)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionError("transient")
            return "done"

        result = policy.call(
            flaky, retriable_fn=lambda o: isinstance(o, ConnectionError)
        )
        assert result == "done"
        assert len(attempts) == 3

    def test_non_retriable_error_raises_immediately(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        attempts = []

        def fatal():
            attempts.append(1)
            raise ValueError("terminal")

        with pytest.raises(ValueError):
            policy.call(fatal, retriable_fn=lambda o: False)
        assert len(attempts) == 1

    def test_exhausted_attempts_reraise_last_error(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        attempts = []

        def always_down():
            attempts.append(1)
            raise ConnectionError(f"try {len(attempts)}")

        with pytest.raises(ConnectionError, match="try 3"):
            policy.call(always_down, retriable_fn=lambda o: True)
        assert len(attempts) == 3

    def test_retriable_return_values_are_retried(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.0)
        envelopes = iter([
            {"ok": False, "retriable": True},
            {"ok": False, "retriable": True},
            {"ok": True},
        ])
        result = policy.call(
            lambda: next(envelopes),
            retriable_fn=lambda o: isinstance(o, dict) and not o.get("ok"),
        )
        assert result == {"ok": True}

    def test_exhausted_attempts_return_last_envelope(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        result = policy.call(
            lambda: {"ok": False, "retriable": True},
            retriable_fn=lambda o: isinstance(o, dict) and not o.get("ok"),
        )
        assert result == {"ok": False, "retriable": True}

    def test_budget_refuses_sleeps_it_cannot_afford(self):
        policy = RetryPolicy(max_attempts=10, base_delay=0.5, seed=3)
        attempts = []

        def always_down():
            attempts.append(1)
            raise ConnectionError("down")

        started = time.monotonic()
        with pytest.raises(ConnectionError):
            policy.call(always_down, retriable_fn=lambda o: True,
                        budget_seconds=0.0)
        # No backoff sleep fits a zero budget: exactly one attempt, fast.
        assert len(attempts) == 1
        assert time.monotonic() - started < 0.4

    def test_single_attempt_policy_never_retries(self):
        policy = RetryPolicy(max_attempts=1)
        attempts = []

        def always_down():
            attempts.append(1)
            raise ConnectionError("down")

        with pytest.raises(ConnectionError):
            policy.call(always_down, retriable_fn=lambda o: True)
        assert len(attempts) == 1

    def test_on_retry_observes_backoffs(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        observed = []
        with pytest.raises(ConnectionError):
            policy.call(
                lambda: (_ for _ in ()).throw(ConnectionError("down")),
                retriable_fn=lambda o: True,
                on_retry=lambda failures, pause, why: observed.append(
                    (failures, pause)
                ),
            )
        assert [failures for failures, _ in observed] == [1, 2]


# ======================================================================
class TestDeadlines:
    def test_expired_deadline_skips_the_forward_pass(self, gamora,
                                                     circuits):
        # The acceptance criterion: a request whose deadline lapses in the
        # queue must fail at dequeue without ever joining a reason_many
        # call — the forward-pass counter provably does not move.
        with GamoraDaemon(gamora, batch_window_ms=300) as daemon:
            ticket = daemon.submit_async(circuits[0], deadline_ms=5)
            with pytest.raises(DeadlineExceededError) as info:
                ticket.result(timeout=120)
            assert info.value.retriable
            assert info.value.deadline_ms == 5
            stats = daemon.scheduler.stats()
            assert stats["expired"] == 1
            assert stats["failed"] == 1
            assert stats["num_shards"] == 0  # no forward pass happened
            # The daemon is fine; the next (patient) request computes.
            outcome, _ = daemon.submit(circuits[0])
            assert daemon.scheduler.stats()["num_shards"] >= 1
            assert outcome.tree.num_full_adders >= 0

    def test_generous_deadline_is_recorded_and_met(self, gamora, circuits,
                                                   sequential):
        with GamoraDaemon(gamora, batch_window_ms=1) as daemon:
            outcome, stats = daemon.submit(circuits[0], deadline_ms=120_000)
            assert stats.deadline_ms == 120_000
            assert_outcome_equal(outcome, sequential[0])

    def test_nonpositive_deadline_rejected_at_submit(self, gamora,
                                                     circuits):
        with GamoraDaemon(gamora, batch_window_ms=1) as daemon:
            with pytest.raises(ValueError, match="deadline_ms"):
                daemon.submit_async(circuits[0], deadline_ms=0)

    def test_deadline_exceeded_over_the_protocol(self, gamora, circuits,
                                                 sequential):
        with GamoraDaemon(gamora, batch_window_ms=300) as daemon:
            client = DaemonClient(daemon)
            response = client.reason(circuits[0], request_id="hasty",
                                     deadline_ms=5)
            assert not response["ok"]
            assert response["error"]["type"] == "deadline_exceeded"
            assert response["error"]["retriable"] is True
            # Bit-identical follow-up once the client is patient again.
            clean = client.reason(circuits[0], request_id="patient")
            assert_payload_matches(clean, sequential[0])

    @pytest.mark.parametrize("bad", [0, -5, True, "soon", []])
    def test_malformed_deadline_is_bad_request(self, gamora, circuits,
                                               bad):
        with GamoraDaemon(gamora, batch_window_ms=1) as daemon:
            response = daemon.handle({
                "op": "reason", "netlist": dumps_aag(circuits[0]),
                "deadline_ms": bad,
            })
            assert not response["ok"]
            assert response["error"]["type"] == "bad_request"

    def test_default_deadline_applies_to_deadline_less_requests(
            self, gamora, circuits):
        with GamoraDaemon(gamora, batch_window_ms=300,
                          default_deadline_ms=5) as daemon:
            client = DaemonClient(daemon)
            response = client.reason(circuits[0])
            assert not response["ok"]
            assert response["error"]["type"] == "deadline_exceeded"
            assert daemon.stats()["default_deadline_ms"] == 5


# ======================================================================
class TestFaultPointScheduler:
    def test_injected_execute_failure_is_typed_and_survived(
            self, gamora, circuits, sequential):
        plan = plan_of({"point": "scheduler.execute", "kind": "raise",
                        "at": [1]})
        with GamoraDaemon(gamora, batch_window_ms=1,
                          fault_plan=plan) as daemon:
            client = DaemonClient(daemon)
            response = client.reason(circuits[0], request_id="doomed")
            assert not response["ok"]
            assert response["error"]["type"] == "internal"
            assert response["error"]["retriable"] is False
            assert "InjectedFaultError" in response["error"]["message"]
            # The scheduler thread survived the injected group failure.
            clean = client.reason(circuits[0], request_id="clean")
            assert_payload_matches(clean, sequential[0])
            assert daemon.scheduler.stats()["failed"] == 1
            assert daemon.stats()["faults"][0]["fires"] == 1

    def test_slow_stage_delays_but_answers_correctly(self, gamora,
                                                     circuits, sequential):
        plan = plan_of({"point": "scheduler.execute", "kind": "sleep",
                        "seconds": 0.3, "at": [1]})
        with GamoraDaemon(gamora, batch_window_ms=1,
                          fault_plan=plan) as daemon:
            outcome, stats = daemon.submit(circuits[0])
            assert stats.total_seconds >= 0.3
            assert_outcome_equal(outcome, sequential[0])

    def test_fail_pending_fails_only_queued_requests(self, gamora,
                                                     circuits, sequential):
        with GamoraDaemon(gamora, batch_window_ms=5000) as daemon:
            tickets = [daemon.submit_async(circuits[i % 3], f"q{i}")
                       for i in range(3)]
            failed = daemon.scheduler.fail_pending(RuntimeError("drained"))
            assert failed == 3
            for ticket in tickets:
                with pytest.raises(RuntimeError, match="drained"):
                    ticket.result(timeout=10)
            assert daemon.scheduler.stats()["failed"] == 3


class TestFaultPointInference:
    def test_memory_error_degrades_to_streamed_pass(self, gamora, circuits,
                                                    sequential):
        # An OOM in the full-graph forward pass must re-run the shard
        # through the level-windowed streaming path at half the budget —
        # same labels, flagged as degraded.
        plan = plan_of({"point": "infer.forward", "kind": "memory",
                        "at": [1]})
        with GamoraDaemon(gamora, batch_window_ms=1,
                          fault_plan=plan) as daemon:
            outcome, stats = daemon.submit(circuits[0])
            assert outcome.degraded
            assert outcome.streamed
            assert stats.degraded and stats.streamed
            assert stats.batch_stats["degraded_shards"] == 1
            assert daemon.scheduler.stats()["degraded_requests"] == 1
            # Bit-identical to the unfaulted sequential reference.
            assert_outcome_equal(outcome, sequential[0])
            # The next request runs the ordinary full pass again.
            clean, clean_stats = daemon.submit(circuits[1])
            assert not clean_stats.degraded
            assert_outcome_equal(clean, sequential[1])

    def test_memory_error_in_streamed_pass_is_terminal(self, gamora,
                                                       circuits,
                                                       sequential):
        # The bottom rung of the ladder: a pass that was *already*
        # streamed OOMs — there is nothing cheaper to fall back to, so
        # the request fails typed while the daemon survives.
        plan = plan_of({"point": "infer.forward", "kind": "memory",
                        "at": [1]})
        with GamoraDaemon(gamora, batch_window_ms=1, max_shard_bytes=1,
                          max_window_bytes=1 << 20,
                          fault_plan=plan) as daemon:
            client = DaemonClient(daemon)
            response = client.reason(circuits[0], request_id="oom")
            assert not response["ok"]
            assert response["error"]["type"] == "internal"
            assert "MemoryError" in response["error"]["message"]
            clean = client.reason(circuits[0], request_id="clean")
            assert_payload_matches(clean, sequential[0])


class TestFaultPointWorkers:
    def test_worker_crash_plan_loses_no_request(self, gamora, circuits,
                                                sequential):
        # Every worker-side extraction dies outright; the parent's
        # in-process fallback must still answer every request correctly.
        plan = plan_of({"point": "postprocess.worker", "kind": "exit",
                        "every": 1})
        with GamoraDaemon(gamora, batch_window_ms=150, result_cache_size=0,
                          postprocess_workers=2,
                          fault_plan=plan) as daemon:
            client = DaemonClient(daemon)
            responses = [None] * 4
            barrier = threading.Barrier(4)

            def worker(index):
                barrier.wait()
                responses[index] = client.reason(circuits[index % 3])

            run_threads(4, worker)
            for index, response in enumerate(responses):
                assert_payload_matches(response, sequential[index % 3])
            # The crashes were real: the pool recovered in-process.
            fallbacks = sum(
                response["stats"]["batch_stats"]["postprocess_fallbacks"]
                for response in responses
            )
            assert fallbacks >= 1


class TestFaultPointServerSend:
    def test_injected_drop_is_survived_by_default_retry(self, gamora,
                                                        circuits,
                                                        sequential,
                                                        tmp_path):
        plan = plan_of({"point": "server.send", "kind": "drop", "at": [1]})
        daemon = GamoraDaemon(gamora, batch_window_ms=1,
                              fault_plan=plan).start()
        server = DaemonServer(daemon, tmp_path / "gamora.sock").start()
        try:
            with SocketDaemonClient(server.socket_path) as client:
                response = client.reason(circuits[0], request_id="dropped")
                # The first response was dropped mid-send; the default
                # RetryPolicy reconnected and the retry found the warm
                # result cache.
                assert_payload_matches(response, sequential[0])
                assert client.reconnects >= 1
                assert client.retriable_errors >= 1
                assert daemon.dropped_responses == 1
                clean = client.reason(circuits[1], request_id="clean")
                assert_payload_matches(clean, sequential[1])
        finally:
            server.close()
            daemon.close()

    def test_vanished_client_counts_a_dropped_response(self, gamora,
                                                       circuits,
                                                       tmp_path):
        # Regression for the satellite: a send failure after computation
        # must increment dropped_responses, never raise in the connection
        # thread — and the computed answer must land in the warm cache.
        daemon = GamoraDaemon(gamora, batch_window_ms=1).start()
        server = DaemonServer(daemon, tmp_path / "gamora.sock").start()
        try:
            ghost = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            ghost.connect(str(server.socket_path))
            message = {"op": "reason", "id": "ghost",
                       "netlist": dumps_aag(circuits[0])}
            ghost.sendall((json.dumps(message) + "\n").encode("utf-8"))
            ghost.close()  # vanish before reading the answer
            deadline = time.monotonic() + 120
            while (daemon.dropped_responses == 0
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert daemon.dropped_responses == 1
            assert daemon.stats()["dropped_responses"] == 1
            # The daemon is alive and the orphaned work was not wasted.
            with SocketDaemonClient(server.socket_path,
                                    retry=None) as client:
                response = client.reason(circuits[0], request_id="redo")
                assert response["ok"]
                assert response["stats"]["result_hit"]
        finally:
            server.close()
            daemon.close()


class TestFaultPointCache:
    def _warm_cache(self, gamora, circuits, cache_dir):
        with GamoraDaemon(gamora, batch_window_ms=1,
                          cache_dir=cache_dir) as warm:
            for aig in circuits:
                warm.submit(aig)
        assert warm.spill_error is None

    def test_corrupt_spill_is_quarantined_on_next_boot(self, gamora,
                                                       circuits,
                                                       sequential,
                                                       tmp_path):
        cache_dir = tmp_path / "cache"
        plan = plan_of({"point": "cache.spill", "kind": "corrupt",
                        "at": [1]})
        with GamoraDaemon(gamora, batch_window_ms=1, cache_dir=cache_dir,
                          fault_plan=plan) as first:
            first.submit(circuits[0])
        resilience.install_plan(None)
        marker = cache_dir / first.service._MODEL_MARKER
        assert marker.read_text().startswith("corrupted")

        with pytest.warns(RuntimeWarning, match="quarantined"):
            second = GamoraDaemon(gamora, batch_window_ms=1,
                                  cache_dir=cache_dir).start()
        try:
            assert second.loaded_results == 0
            assert len(second.quarantined) == 1
            assert Path(second.quarantined[0]).exists()  # kept for post-mortem
            assert not cache_dir.exists()  # path freed for the respill
            outcome, stats = second.submit(circuits[0])
            assert not stats.result_hit  # served cold, not from the wreck
            assert_outcome_equal(outcome, sequential[0])
        finally:
            second.close()
        # The close-time spill recreated a healthy directory in place.
        assert second.spill_error is None
        with GamoraDaemon(gamora, batch_window_ms=1,
                          cache_dir=cache_dir) as third:
            assert third.loaded_results >= 1
            _, stats = third.submit(circuits[0])
            assert stats.result_hit

    def test_unreadable_cache_load_degrades_to_cold(self, gamora, circuits,
                                                    sequential, tmp_path):
        cache_dir = tmp_path / "cache"
        self._warm_cache(gamora, circuits, cache_dir)
        plan = plan_of({"point": "cache.load", "kind": "raise",
                        "every": 1})
        resilience.install_plan(plan)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            daemon = GamoraDaemon(gamora, batch_window_ms=1,
                                  cache_dir=cache_dir).start()
        resilience.install_plan(None)
        try:
            assert daemon.loaded_results == 0
            assert daemon.quarantined  # the wreck was renamed aside
            outcome, _ = daemon.submit(circuits[0])
            assert_outcome_equal(outcome, sequential[0])
        finally:
            daemon.close()

    def test_foreign_cache_dir_is_never_touched(self, gamora, circuits,
                                                tmp_path):
        foreign = tmp_path / "cache"
        foreign.mkdir()
        (foreign / "somebody-elses.npz").write_bytes(b"not ours")
        with pytest.warns(RuntimeWarning, match="foreign"):
            daemon = GamoraDaemon(gamora, batch_window_ms=1,
                                  cache_dir=foreign).start()
        try:
            assert daemon.loaded_results == 0
            assert daemon.quarantined == []
            assert (foreign / "somebody-elses.npz").exists()
            outcome, _ = daemon.submit(circuits[0])
            assert outcome is not None
        finally:
            daemon.close()


# ======================================================================
class _FakeScheduler:
    def __init__(self, age, depth):
        self.age = age
        self.queue_depth = depth
        self.errors = []

    def heartbeat_age(self):
        return self.age

    def fail_pending(self, error):
        self.errors.append(error)
        failed, self.queue_depth = self.queue_depth, 0
        return failed


class TestWatchdog:
    def _spin(self, condition, timeout=5.0):
        deadline = time.monotonic() + timeout
        while not condition() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert condition()

    def test_trips_on_stale_heartbeat_with_queued_work(self):
        fake = _FakeScheduler(age=10.0, depth=3)
        with Watchdog(fake, timeout_seconds=0.05,
                      poll_seconds=0.01) as watchdog:
            self._spin(lambda: watchdog.trips >= 1)
        assert watchdog.failed_tickets == 3
        error = fake.errors[0]
        assert isinstance(error, SchedulerWedgedError)
        assert error.retriable
        assert error.heartbeat_age == 10.0

    def test_idle_staleness_never_trips(self):
        fake = _FakeScheduler(age=10.0, depth=0)
        with Watchdog(fake, timeout_seconds=0.05,
                      poll_seconds=0.01) as watchdog:
            time.sleep(0.2)
            assert watchdog.trips == 0
        assert fake.errors == []

    def test_fresh_heartbeat_never_trips(self):
        fake = _FakeScheduler(age=0.0, depth=5)
        with Watchdog(fake, timeout_seconds=0.05,
                      poll_seconds=0.01) as watchdog:
            time.sleep(0.2)
            assert watchdog.trips == 0

    def test_wedged_scheduler_fails_queued_requests(self, gamora, circuits,
                                                    sequential):
        # Wedge the loop inside one batch (a 1.5s injected stall); a
        # request queued behind it must get the typed retriable error
        # instead of hanging, while the stalled batch itself completes.
        plan = plan_of({"point": "scheduler.execute", "kind": "sleep",
                        "seconds": 1.5, "at": [1]})
        with GamoraDaemon(gamora, batch_window_ms=50,
                          watchdog_timeout_seconds=0.4,
                          fault_plan=plan) as daemon:
            stalled = daemon.submit_async(circuits[0], "stalled")
            time.sleep(0.2)  # let the batch dispatch into the stall
            stuck = daemon.submit_async(circuits[1], "stuck-behind")
            with pytest.raises(SchedulerWedgedError) as info:
                stuck.result(timeout=120)
            assert info.value.retriable
            # The in-flight batch was not interrupted: it resolves fine.
            assert_outcome_equal(stalled.result(timeout=120), sequential[0])
            watchdog_stats = daemon.stats()["watchdog"]
            assert watchdog_stats["trips"] == 1
            assert watchdog_stats["failed_tickets"] == 1
            # And the daemon keeps serving afterwards.
            outcome, _ = daemon.submit(circuits[1])
            assert_outcome_equal(outcome, sequential[1])


# ======================================================================
class TestBadRequestMapping:
    """Malformed AIGER bytes are the client's fault, never ``internal``."""

    @pytest.fixture(scope="class")
    def daemon(self, gamora):
        with GamoraDaemon(gamora, batch_window_ms=1) as daemon:
            yield daemon

    def assert_bad_request(self, daemon, netlist):
        response = daemon.handle({"op": "reason", "netlist": netlist,
                                  "id": "fuzz"})
        assert not response["ok"], netlist
        assert response["error"]["type"] == "bad_request", (
            netlist, response["error"],
        )
        assert response["error"]["retriable"] is False

    @pytest.mark.parametrize("netlist", [
        "",                                  # empty
        "hello world",                       # no header
        "aag x 1 0 1 0",                     # non-numeric header field
        "aag -1 0 0 0 0",                    # negative count
        "aag 1 0 1 0 0",                     # latches unsupported
        "aag 1 2 0 0 0",                     # more inputs than variables
        "aag 3 1 0 1 2",                     # inputs+ands exceed max_var
        "aag 1 1 0 0 0\n3",                  # odd input literal
        "aag 2 2 0 0 0\n2\n2",               # duplicate input literal
        "aag 1 0 0 1 0\n4",                  # output uses undefined literal
        "aag 2 1 0 0 1\n2\n4 2",             # AND line with 2 fields
        "aag 2 1 0 0 1\n2\n4 2 x",           # non-numeric AND field
        "aag 2 1 0 0 1\n2\n3 2 2",           # odd AND lhs
        "aag 2 1 0 0 1\n2\n2 2 2",           # AND redefines an input
        "aag 2 1 0 1 1\n2\n4\n4 2 -1",       # negative fan-in
    ])
    def test_handcrafted_malformed_netlists(self, daemon, netlist):
        self.assert_bad_request(daemon, netlist)

    def test_every_truncation_of_a_valid_netlist(self, daemon, circuits):
        lines = dumps_aag(circuits[0]).splitlines()
        definitions = (1 + circuits[0].num_inputs + circuits[0].num_outputs
                       + circuits[0].num_ands)
        # Every prefix that cuts inside the definition section is
        # malformed input, and must say so as bad_request.
        for cut in range(1, definitions):
            self.assert_bad_request(daemon, "\n".join(lines[:cut]))

    def test_seeded_garbage_payloads(self, daemon):
        import random

        rng = random.Random(0xFA11)
        for _ in range(40):
            length = rng.randrange(1, 120)
            garbage = "".join(
                chr(rng.randrange(32, 127)) for _ in range(length)
            )
            if rng.random() < 0.5:
                garbage = "aag " + garbage
            response = daemon.handle({"op": "reason", "netlist": garbage})
            # A random string that happens to parse would be a legitimate
            # (if tiny) circuit; anything rejected must be bad_request.
            if not response["ok"]:
                assert response["error"]["type"] == "bad_request", garbage

    def test_non_string_netlists_and_bad_envelopes(self, daemon):
        for message in (
            {"op": "reason"},                          # missing netlist
            {"op": "reason", "netlist": 7},            # wrong type
            {"op": "reason", "netlist": None},
            {"op": "teleport"},                        # unknown op
            {"op": "reason", "netlist": "aag 0 0 0 0 0",
             "options": "fast"},                       # options not a dict
            {"op": "reason", "netlist": "aag 0 0 0 0 0",
             "options": {"speed": 11}},                # unknown option
        ):
            response = daemon.handle(message)
            assert not response["ok"]
            assert response["error"]["type"] == "bad_request"
        response = daemon.handle("not a dict")
        assert response["error"]["type"] == "bad_request"

    def test_binary_truncations_raise_instead_of_hanging(self, circuits,
                                                         tmp_path):
        # Regression: a truncated binary .aig used to spin forever in the
        # output-line reader. Every prefix must now either parse (symbol
        # section lost) or raise ValueError — promptly.
        path = tmp_path / "whole.aig"
        write_aig(circuits[0], path)
        data = path.read_bytes()
        stride = max(1, len(data) // 64)
        truncated = tmp_path / "cut.aig"
        for cut in range(3, len(data), stride):
            truncated.write_bytes(data[:cut])
            try:
                read_aiger(truncated)
            except ValueError:
                pass  # the only acceptable failure mode
        # A cut inside the output-literal lines definitely raises.
        header_end = data.index(b"\n") + 1
        truncated.write_bytes(data[:header_end + 1])
        with pytest.raises(ValueError):
            read_aiger(truncated)


# ======================================================================
class TestClientRetryAcceptance:
    def test_retry_survives_queue_full_burst_and_socket_drop(
            self, gamora, circuits, sequential, tmp_path):
        # Acceptance: SocketDaemonClient with a retry policy transparently
        # survives queue_full backpressure *and* one injected mid-response
        # socket drop on the same request.
        plan = plan_of({"point": "server.send", "kind": "drop", "at": [1]})
        daemon = GamoraDaemon(gamora, batch_window_ms=300,
                              max_queue_depth=1,
                              fault_plan=plan).start()
        server = DaemonServer(daemon, tmp_path / "gamora.sock").start()
        try:
            # Occupy the whole queue so the socket request is rejected
            # with queue_full until the window drains it.
            blocker = daemon.submit_async(circuits[1], "blocker")
            retry = RetryPolicy(max_attempts=12, base_delay=0.05, seed=7)
            with SocketDaemonClient(server.socket_path,
                                    retry=retry) as client:
                response = client.reason(circuits[0], request_id="burst")
                assert_payload_matches(response, sequential[0])
                assert client.retriable_errors >= 1
            blocker.result(timeout=120)
            assert daemon.scheduler.stats()["rejected"] >= 1
            assert daemon.dropped_responses == 1
        finally:
            server.close()
            daemon.close()

    def test_concurrent_burst_converges_with_default_retries(
            self, gamora, circuits, sequential, tmp_path):
        daemon = GamoraDaemon(gamora, batch_window_ms=50,
                              max_queue_depth=2).start()
        server = DaemonServer(daemon, tmp_path / "gamora.sock").start()
        try:
            responses = [None] * 6
            barrier = threading.Barrier(6)

            def worker(index):
                retry = RetryPolicy(max_attempts=15, base_delay=0.05,
                                    seed=100 + index)
                with SocketDaemonClient(server.socket_path,
                                        retry=retry) as client:
                    barrier.wait()
                    responses[index] = client.reason(
                        circuits[index % 3], request_id=f"burst-{index}"
                    )

            run_threads(6, worker)
            for index, response in enumerate(responses):
                assert_payload_matches(response, sequential[index % 3])
        finally:
            server.close()
            daemon.close()
