"""Sharded + parallel serving: planner properties and equivalence.

The scaling knobs added on top of the batched service must never change
answers: for any budget (including budgets that split the batch at every
boundary or mark circuits oversize) and any worker count (including worker
crashes), ``reason_many`` must return labels and extractions identical to
sequential ``Gamora.reason``.  The planner itself is checked as a pure
function: budget respected, exact partition, deterministic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Gamora
from repro.generators import booth_multiplier, csa_multiplier, squarer
from repro.learn import TrainConfig, estimate_batch_memory
from repro.serve import PostprocessPool, ReasoningService, plan_shards
from repro.serve.workers import (
    AUTO_MIN_TOTAL_ANDS,
    FAULT_ENV,
    fork_available,
    resolve_workers,
)

ZOO = [
    lambda: csa_multiplier(3),
    lambda: csa_multiplier(4),
    lambda: csa_multiplier(5),
    lambda: booth_multiplier(3),
    lambda: squarer(4),
]
SPEC_IDS = st.integers(0, len(ZOO) - 1)


@pytest.fixture(scope="module")
def gamora():
    model = Gamora(model="shallow", train_config=TrainConfig(epochs=60))
    model.fit([csa_multiplier(6)])
    return model


@pytest.fixture(scope="module")
def zoo_graphs(gamora):
    """Encoded graphs for the whole zoo (planner inputs)."""
    service = ReasoningService(gamora)
    return [service.encode(spec()) for spec in ZOO]


@pytest.fixture(scope="module")
def sequential_memo(gamora):
    memo = {}

    def lookup(spec_id):
        if spec_id not in memo:
            memo[spec_id] = gamora.reason(ZOO[spec_id]())
        return memo[spec_id]

    return lookup


def assert_outcome_equal(batched, sequential):
    assert set(batched.labels) == set(sequential.labels)
    for task in sequential.labels:
        np.testing.assert_array_equal(batched.labels[task], sequential.labels[task])
    batched_tree = sorted(
        (a.kind, a.sum_var, a.carry_var, tuple(sorted(a.leaves)))
        for a in batched.tree.adders
    )
    sequential_tree = sorted(
        (a.kind, a.sum_var, a.carry_var, tuple(sorted(a.leaves)))
        for a in sequential.tree.adders
    )
    assert batched_tree == sequential_tree
    assert batched.extraction.rejected_xor == sequential.extraction.rejected_xor
    assert batched.extraction.rejected_maj == sequential.extraction.rejected_maj


class TestShardPlanner:
    def test_no_budget_is_single_shard(self, gamora, zoo_graphs):
        plan = plan_shards(gamora.net, zoo_graphs, max_shard_bytes=None)
        assert len(plan) == 1
        assert sorted(plan.shards[0].indices) == list(range(len(zoo_graphs)))
        assert plan.shards[0].num_nodes == sum(g.num_nodes for g in zoo_graphs)
        assert not plan.shards[0].oversize
        assert plan_shards(gamora.net, zoo_graphs, max_shard_bytes=0).max_shard_bytes is None

    def test_empty_input(self, gamora):
        assert len(plan_shards(gamora.net, [], max_shard_bytes=1024)) == 0

    def test_budget_respected_and_partition_exact(self, gamora, zoo_graphs):
        standalone = [estimate_batch_memory(gamora.net, [g]) for g in zoo_graphs]
        budget = max(standalone) + min(standalone) // 2
        plan = plan_shards(gamora.net, zoo_graphs, max_shard_bytes=budget)
        assert len(plan) > 1  # the budget genuinely splits this batch
        covered = sorted(i for shard in plan for i in shard.indices)
        assert covered == list(range(len(zoo_graphs)))  # exact partition
        for shard in plan:
            assert not shard.oversize
            assert shard.estimated_bytes <= budget
            assert shard.estimated_bytes == estimate_batch_memory(
                gamora.net, [zoo_graphs[i] for i in shard.indices]
            )
        assert plan.peak_shard_bytes <= budget

    def test_oversize_singletons_get_own_shard(self, gamora, zoo_graphs):
        standalone = [estimate_batch_memory(gamora.net, [g]) for g in zoo_graphs]
        plan = plan_shards(gamora.net, zoo_graphs,
                           max_shard_bytes=min(standalone) - 1)
        assert len(plan) == len(zoo_graphs)
        assert all(shard.oversize and len(shard) == 1 for shard in plan)
        assert plan.num_oversize == len(zoo_graphs)
        assert "oversize" in plan.summary()

    def test_mixed_oversize_and_packed(self, gamora, zoo_graphs):
        standalone = [estimate_batch_memory(gamora.net, [g]) for g in zoo_graphs]
        # Budget admits everything but the largest graph.
        budget = sorted(standalone)[-2] + 1
        plan = plan_shards(gamora.net, zoo_graphs, max_shard_bytes=budget)
        oversized = [shard for shard in plan if shard.oversize]
        assert len(oversized) == 1
        assert standalone[oversized[0].indices[0]] == max(standalone)
        for shard in plan:
            if not shard.oversize:
                assert shard.estimated_bytes <= budget

    def test_service_plan_uses_configured_budget(self, gamora, zoo_graphs):
        """plan() must predict what reason_many actually executes."""
        standalone = [estimate_batch_memory(gamora.net, [g]) for g in zoo_graphs]
        budget = max(standalone) + 1
        service = ReasoningService(gamora, max_shard_bytes=budget)
        plan = service.plan([spec() for spec in ZOO])  # no override: use budget
        assert plan.max_shard_bytes == budget
        assert len(plan) > 1
        unbounded = service.plan([spec() for spec in ZOO], None)  # explicit
        assert len(unbounded) == 1

    def test_deterministic(self, gamora, zoo_graphs):
        budget = estimate_batch_memory(gamora.net, zoo_graphs) // 2
        first = plan_shards(gamora.net, zoo_graphs, max_shard_bytes=budget)
        second = plan_shards(gamora.net, zoo_graphs, max_shard_bytes=budget)
        assert [s.indices for s in first] == [s.indices for s in second]
        # Streaming order follows input order through the first member.
        firsts = [s.indices[0] for s in first]
        assert firsts == sorted(firsts)


class TestShardedEquivalence:
    def test_single_graph_shards_match_sequential(self, gamora, zoo_graphs,
                                                  sequential_memo):
        """Budget below every standalone estimate: one circuit per shard."""
        # Budgets for the service come from the deployment kernel's pricing
        # (float32) — the estimator the service itself plans with.
        kernel = gamora.inference_kernel()
        standalone = [estimate_batch_memory(kernel, [g]) for g in zoo_graphs]
        service = ReasoningService(gamora, result_cache_size=0,
                                   max_shard_bytes=min(standalone) - 1)
        spec_ids = list(range(len(ZOO)))
        batch = service.reason_many([ZOO[i]() for i in spec_ids])
        assert batch.stats.num_shards == len(ZOO)
        assert batch.stats.oversize_shards == len(ZOO)
        for spec_id, outcome in zip(spec_ids, batch):
            assert_outcome_equal(outcome, sequential_memo(spec_id))

    def test_shard_boundary_groups_match_sequential(self, gamora, zoo_graphs,
                                                    sequential_memo):
        """A budget that splits the batch mid-way (the boundary case)."""
        kernel = gamora.inference_kernel()
        standalone = [estimate_batch_memory(kernel, [g]) for g in zoo_graphs]
        budget = max(standalone) + min(standalone) // 2
        service = ReasoningService(gamora, result_cache_size=0,
                                   max_shard_bytes=budget)
        spec_ids = [0, 1, 2, 3, 4, 1, 0]  # includes within-batch duplicates
        batch = service.reason_many([ZOO[i]() for i in spec_ids])
        assert 1 < batch.stats.num_shards < len(ZOO)
        assert batch.stats.peak_shard_bytes <= budget
        for spec_id, outcome in zip(spec_ids, batch):
            assert_outcome_equal(outcome, sequential_memo(spec_id))

    def test_stats_accumulate_across_shards(self, gamora, zoo_graphs):
        kernel = gamora.inference_kernel()
        standalone = [estimate_batch_memory(kernel, [g]) for g in zoo_graphs]
        service = ReasoningService(gamora, result_cache_size=0,
                                   max_shard_bytes=max(standalone) + 1)
        batch = service.reason_many([spec() for spec in ZOO])
        stats = batch.stats
        assert stats.num_shards > 1
        # Totals are summed over shards, not overwritten by the last one.
        assert stats.num_nodes == sum(g.num_nodes for g in zoo_graphs)
        assert stats.num_edges == sum(g.num_edges for g in zoo_graphs)
        assert stats.inference_seconds > 0
        assert stats.postprocess_seconds > 0
        assert f"shards={stats.num_shards}" in stats.summary()

    def test_gamora_reason_many_passes_knobs_through(self, gamora,
                                                     sequential_memo):
        gamora._service = None  # fresh caches for a cold call
        batch = gamora.reason_many(
            [ZOO[0](), ZOO[1]()], max_shard_bytes=1, postprocess_workers=0
        )
        assert batch.stats.num_shards == 2
        assert_outcome_equal(batch[0], sequential_memo(0))
        assert_outcome_equal(batch[1], sequential_memo(1))
        gamora._service = None  # do not leak the tiny budget to other tests

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(spec_ids=st.lists(SPEC_IDS, min_size=1, max_size=4),
           budget_div=st.sampled_from([0, 1, 2, 8]))
    def test_property_sharded_matches_unsharded(self, spec_ids, budget_div,
                                                gamora, zoo_graphs,
                                                sequential_memo):
        """Any batch x any budget: identical to sequential reason()."""
        total = estimate_batch_memory(gamora.inference_kernel(), zoo_graphs)
        budget = None if budget_div == 0 else max(total // budget_div, 1)
        service = ReasoningService(gamora, result_cache_size=0,
                                   max_shard_bytes=budget)
        batch = service.reason_many([ZOO[i]() for i in spec_ids])
        for spec_id, outcome in zip(spec_ids, batch):
            assert_outcome_equal(outcome, sequential_memo(spec_id))


class TestParallelPostprocess:
    def test_workers_match_sequential(self, gamora, sequential_memo):
        service = ReasoningService(gamora, result_cache_size=0,
                                   postprocess_workers=2)
        spec_ids = [0, 3, 4, 0]
        batch = service.reason_many([ZOO[i]() for i in spec_ids])
        assert batch.stats.postprocess_fallbacks == 0
        for spec_id, outcome in zip(spec_ids, batch):
            assert_outcome_equal(outcome, sequential_memo(spec_id))
        # Cache disabled: labels stay writable, like sequential reason().
        assert batch[0].labels["root"].flags.writeable

    def test_workers_with_sharding_match_sequential(self, gamora, zoo_graphs,
                                                    sequential_memo):
        kernel = gamora.inference_kernel()
        standalone = [estimate_batch_memory(kernel, [g]) for g in zoo_graphs]
        service = ReasoningService(
            gamora, result_cache_size=0,
            max_shard_bytes=max(standalone) + 1, postprocess_workers=2,
        )
        spec_ids = [0, 1, 2, 3, 4]
        batch = service.reason_many([ZOO[i]() for i in spec_ids])
        assert batch.stats.num_shards > 1
        for spec_id, outcome in zip(spec_ids, batch):
            assert_outcome_equal(outcome, sequential_memo(spec_id))

    def test_worker_crash_falls_back_in_process(self, gamora, sequential_memo,
                                                monkeypatch):
        """Injected worker faults: every circuit is recovered in-process."""
        monkeypatch.setenv(FAULT_ENV, "1")
        service = ReasoningService(gamora, result_cache_size=0,
                                   postprocess_workers=2)
        spec_ids = [0, 3]
        batch = service.reason_many([ZOO[i]() for i in spec_ids])
        assert batch.stats.postprocess_fallbacks == len(spec_ids)
        for spec_id, outcome in zip(spec_ids, batch):
            assert_outcome_equal(outcome, sequential_memo(spec_id))

    def test_worker_hard_crash_falls_back_in_process(self, gamora,
                                                     sequential_memo,
                                                     monkeypatch):
        """A worker that dies outright (simulated OOM-kill) must not hang:
        the broken executor surfaces the loss and every circuit is
        recovered in-process."""
        monkeypatch.setenv(FAULT_ENV, "exit")
        service = ReasoningService(gamora, result_cache_size=0,
                                   postprocess_workers=2)
        spec_ids = [0, 3]
        batch = service.reason_many([ZOO[i]() for i in spec_ids])
        assert batch.stats.postprocess_fallbacks == len(spec_ids)
        for spec_id, outcome in zip(spec_ids, batch):
            assert_outcome_equal(outcome, sequential_memo(spec_id))

    def test_fork_unavailable_degrades_to_in_process(self, gamora,
                                                     sequential_memo,
                                                     monkeypatch):
        monkeypatch.setattr("repro.serve.workers.fork_available", lambda: False)
        service = ReasoningService(gamora, result_cache_size=0,
                                   postprocess_workers=4)
        batch = service.reason_many([ZOO[0]()])
        assert batch.stats.postprocess_workers == 0  # degraded, not failed
        assert_outcome_equal(batch[0], sequential_memo(0))

    def test_pool_lifecycle(self):
        pool = PostprocessPool(0)
        assert not pool.parallel and pool.workers == 0
        with PostprocessPool(1) as live:
            assert live.parallel == (live.workers > 0)  # False only without fork
        assert not live.parallel  # closed on exit


class TestPersistentResultCache:
    def test_rejects_other_models(self, gamora, tmp_path):
        """A cache dir written under one model must never serve another."""
        service = ReasoningService(gamora)
        service.reason_many([ZOO[0]()])
        spill = tmp_path / "results"
        assert service.save_result_cache(spill) == 1
        # Same model: a fresh service reloads and serves hits.
        twin = ReasoningService(gamora)
        assert twin.load_result_cache(spill) == 1
        reloaded = twin.reason_many([ZOO[0]()])
        assert reloaded.stats.result_hits == 1
        # Disk-reloaded payloads re-acquire the frozen invariant for the
        # array-core tree, not just the labels (pickling drops the flag).
        with pytest.raises(ValueError):
            reloaded[0].extraction.tree.arrays().sum_var[0] = 5
        # Different weights (fresh untrained net): refuse to load...
        other = ReasoningService(Gamora(model="shallow"))
        assert other.load_result_cache(spill) == 0
        assert len(other.result_cache) == 0
        # ...and saving under the other model purges the stale entries.
        other.reason_many([ZOO[1]()])
        assert other.save_result_cache(spill) == 1
        assert twin.load_result_cache(spill) == 0  # stamp changed hands

    def test_never_touches_foreign_directories(self, gamora, tmp_path):
        """Unstamped dirs holding npz files are refused, not cleaned out."""
        service = ReasoningService(gamora)
        service.reason_many([ZOO[0]()])
        # Stamp-less entries (written via the raw cache API) never load...
        bare = tmp_path / "bare"
        service.result_cache.to_dir(bare)
        assert ReasoningService(gamora).load_result_cache(bare) == 0
        # ...and saving into a dir with foreign npz data refuses loudly
        # instead of deleting files the service never wrote.
        foreign = tmp_path / "datasets"
        foreign.mkdir()
        keep = foreign / "irreplaceable.npz"
        keep.write_bytes(b"user data, not ours")
        with pytest.raises(OSError, match="refusing"):
            service.save_result_cache(foreign)
        assert keep.read_bytes() == b"user data, not ours"
        # A user's own file that merely *shares the marker name* does not
        # make the dir service-owned: content is checked, nothing deleted.
        noted = tmp_path / "my-notes"
        noted.mkdir()
        (noted / "MODEL.tag").write_text("my experiment notes\n")
        (noted / "precious.npz").write_bytes(b"experiment data")
        with pytest.raises(OSError, match="refusing"):
            service.save_result_cache(noted)
        assert (noted / "precious.npz").read_bytes() == b"experiment data"
        assert (noted / "MODEL.tag").read_text() == "my experiment notes\n"
        assert ReasoningService.validate_cache_dir(noted) is not None


class TestPersistentGraphCache:
    def test_round_trip_restores_hit_rate(self, gamora, tmp_path):
        service = ReasoningService(gamora)
        service.reason_many([ZOO[0](), ZOO[1]()])
        spill = tmp_path / "graphs"
        assert service.save_graph_cache(spill) == 2
        # A fresh service preloads the encodings: the batch re-encodes
        # nothing (graph hits for every unique circuit).
        twin = ReasoningService(gamora)
        assert twin.load_graph_cache(spill) == 2
        stats = twin.reason_many([ZOO[0](), ZOO[1]()]).stats
        assert stats.graph_hits == 2
        assert stats.graph_misses == 0
        # Repeated saves are incremental: nothing new to write.
        assert service.save_graph_cache(spill) == 0

    def test_loaded_encodings_serve_identical_outcomes(self, gamora,
                                                       sequential_memo,
                                                       tmp_path):
        service = ReasoningService(gamora)
        service.reason_many([ZOO[2]()])
        spill = tmp_path / "graphs"
        service.save_graph_cache(spill)
        twin = ReasoningService(gamora)
        twin.load_graph_cache(spill)
        assert_outcome_equal(twin.reason_many([ZOO[2]()])[0],
                             sequential_memo(2))

    def test_rejects_other_encodings(self, gamora, tmp_path):
        """Encodings depend on feature_mode/direction — a spill written
        under a different encoding must load nothing; a retrained model
        with the same encoding must still load it."""
        service = ReasoningService(gamora)
        service.reason_many([ZOO[0]()])
        spill = tmp_path / "graphs"
        assert service.save_graph_cache(spill) == 1
        other = ReasoningService(
            Gamora(model="shallow", feature_mode="structural"))
        assert other.load_graph_cache(spill) == 0
        assert len(other.graph_cache) == 0
        # Same encoding, different (untrained) weights: graphs stay valid.
        retrained = ReasoningService(Gamora(model="shallow"))
        assert retrained.load_graph_cache(spill) == 1

    def test_never_touches_foreign_directories(self, gamora, tmp_path):
        service = ReasoningService(gamora)
        service.reason_many([ZOO[0]()])
        foreign = tmp_path / "datasets"
        foreign.mkdir()
        keep = foreign / "irreplaceable.npz"
        keep.write_bytes(b"user data, not ours")
        with pytest.raises(OSError, match="refusing"):
            service.save_graph_cache(foreign)
        assert keep.read_bytes() == b"user data, not ours"
        assert ReasoningService.validate_graph_cache_dir(foreign) is not None


class TestAdaptiveWorkerSizing:
    def test_explicit_request_wins(self):
        assert resolve_workers(3, num_payloads=1, total_ands=1) == 3
        assert resolve_workers(0, num_payloads=64, total_ands=10**9) == 0
        assert resolve_workers(-2) == 0

    def test_auto_stays_in_process_for_tiny_workloads(self, monkeypatch):
        monkeypatch.setattr("repro.serve.workers.os.cpu_count", lambda: 8)
        # Single unique circuit: nothing to overlap.
        assert resolve_workers(None, num_payloads=1, total_ands=10**9) == 0
        # Tiny total workload: fork overhead dominates.
        assert resolve_workers(None, num_payloads=4, total_ands=100) == 0

    def test_auto_scales_with_cpus_and_payloads(self, monkeypatch):
        monkeypatch.setattr("repro.serve.workers.os.cpu_count", lambda: 8)
        if not fork_available():
            pytest.skip("no fork on this platform")
        big = AUTO_MIN_TOTAL_ANDS
        # One worker per circuit, capped at cpu_count - 1.
        assert resolve_workers(None, num_payloads=3, total_ands=big) == 3
        assert resolve_workers(None, num_payloads=64, total_ands=big) == 7

    def test_auto_zero_without_fork_or_on_single_core(self, monkeypatch):
        monkeypatch.setattr("repro.serve.workers.fork_available", lambda: False)
        assert resolve_workers(None, num_payloads=8,
                               total_ands=AUTO_MIN_TOTAL_ANDS) == 0
        monkeypatch.setattr("repro.serve.workers.fork_available", lambda: True)
        monkeypatch.setattr("repro.serve.workers.os.cpu_count", lambda: 1)
        assert resolve_workers(None, num_payloads=8,
                               total_ands=AUTO_MIN_TOTAL_ANDS) == 0

    def test_service_default_autosizes_small_batches_in_process(self, gamora,
                                                                sequential_memo):
        """The zoo circuits are tiny, so the default (None) resolves to 0
        workers — results still identical to sequential."""
        service = ReasoningService(gamora, result_cache_size=0)
        assert service.postprocess_workers is None
        batch = service.reason_many([ZOO[0](), ZOO[1]()])
        assert batch.stats.postprocess_workers == 0
        assert_outcome_equal(batch[0], sequential_memo(0))
        assert_outcome_equal(batch[1], sequential_memo(1))

    def test_results_cached_through_parallel_path(self, gamora):
        service = ReasoningService(gamora, postprocess_workers=2)
        cold = service.reason_many([ZOO[0](), ZOO[1]()])
        assert cold.stats.result_hits == 0
        warm = service.reason_many([ZOO[1](), ZOO[0]()])
        assert warm.stats.result_hits == 2
        assert_outcome_equal(warm[0], cold[1])
        assert_outcome_equal(warm[1], cold[0])
