"""Autodiff engine tests: every op gradient is finite-difference checked."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, concat, is_grad_enabled, no_grad, spmm

RNG = np.random.default_rng(3)
EPS = 1e-6
TOL = 1e-5


def numeric_grad(func, value: np.ndarray) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``func``."""
    grad = np.zeros_like(value)
    flat = value.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + EPS
        upper = func(value)
        flat[index] = original - EPS
        lower = func(value)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * EPS)
    return grad


def check_gradient(build_loss, shape) -> None:
    """Compare autodiff and numeric gradients on a random input."""
    value = RNG.standard_normal(shape)
    tensor = Tensor(value.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    numeric = numeric_grad(lambda v: float(build_loss(Tensor(v)).data), value)
    np.testing.assert_allclose(tensor.grad, numeric, atol=TOL, rtol=TOL)


class TestElementwise:
    def test_add_gradient(self):
        check_gradient(lambda t: (t + 2.0).sum(), (3, 4))

    def test_mul_gradient(self):
        other = Tensor(RNG.standard_normal((3, 4)))
        check_gradient(lambda t: (t * other).sum(), (3, 4))

    def test_sub_neg_gradient(self):
        check_gradient(lambda t: (-t - 1.5).sum(), (2, 5))

    def test_relu_gradient(self):
        check_gradient(lambda t: t.relu().sum(), (4, 4))

    def test_mean_gradient(self):
        check_gradient(lambda t: t.mean(), (6, 2))

    def test_broadcast_bias_gradient(self):
        bias = Tensor(RNG.standard_normal(4), requires_grad=True)
        x = Tensor(RNG.standard_normal((3, 4)))
        (x + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(4, 3.0))


class TestMatmul:
    def test_left_gradient(self):
        right = Tensor(RNG.standard_normal((4, 2)))
        check_gradient(lambda t: (t @ right).sum(), (3, 4))

    def test_right_gradient(self):
        left_value = RNG.standard_normal((3, 4))
        value = RNG.standard_normal((4, 2))
        weight = Tensor(value.copy(), requires_grad=True)
        (Tensor(left_value) @ weight).sum().backward()
        numeric = numeric_grad(
            lambda v: float((Tensor(left_value) @ Tensor(v)).sum().data), value
        )
        np.testing.assert_allclose(weight.grad, numeric, atol=TOL)


class TestSoftmaxLoss:
    def test_log_softmax_rows_normalize(self):
        t = Tensor(RNG.standard_normal((5, 3)))
        out = t.log_softmax()
        np.testing.assert_allclose(np.exp(out.data).sum(axis=1), np.ones(5))

    def test_log_softmax_gradient(self):
        weights = RNG.random((4, 3))
        check_gradient(
            lambda t: (t.log_softmax() * Tensor(weights)).sum(), (4, 3)
        )

    def test_nll_gradient(self):
        targets = np.array([0, 2, 1, 2])
        check_gradient(
            lambda t: t.log_softmax().nll_loss(targets), (4, 3)
        )

    def test_nll_with_weights_gradient(self):
        targets = np.array([0, 2, 1, 2])
        sample_weight = np.array([1.0, 0.0, 2.0, 0.5])
        check_gradient(
            lambda t: t.log_softmax().nll_loss(targets, sample_weight), (4, 3)
        )

    def test_nll_rejects_zero_weight_total(self):
        t = Tensor(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            t.nll_loss(np.array([0, 1]), np.zeros(2))

    def test_nll_masked_rows_get_no_gradient(self):
        value = RNG.standard_normal((3, 2))
        t = Tensor(value, requires_grad=True)
        weights = np.array([1.0, 0.0, 1.0])
        t.log_softmax().nll_loss(np.array([0, 1, 1]), weights).backward()
        np.testing.assert_allclose(t.grad[1], np.zeros(2), atol=1e-12)


class TestConcatSparse:
    def test_concat_gradient_routes_to_both(self):
        a_val = RNG.standard_normal((3, 2))
        b_val = RNG.standard_normal((3, 4))
        a = Tensor(a_val.copy(), requires_grad=True)
        b = Tensor(b_val.copy(), requires_grad=True)
        (concat([a, b], axis=1) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((3, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((3, 4), 2.0))

    def test_spmm_gradient(self):
        matrix = sp.random(5, 5, density=0.4, random_state=1, format="csr")
        check_gradient(lambda t: spmm(matrix, t).sum(), (5, 3))

    def test_spmm_matches_dense(self):
        matrix = sp.random(6, 6, density=0.5, random_state=2, format="csr")
        x = Tensor(RNG.standard_normal((6, 2)))
        np.testing.assert_allclose(
            spmm(matrix, x).data, matrix.toarray() @ x.data
        )


class TestEngine:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            t.backward()

    def test_grad_accumulates_over_reuse(self):
        t = Tensor(np.ones(3), requires_grad=True)
        ((t * 2.0).sum() + (t * 3.0).sum()).backward()
        np.testing.assert_allclose(t.grad, np.full(3, 5.0))

    def test_no_grad_blocks_tape(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = (t * 2.0).sum()
        assert not out.requires_grad

    def test_detach(self):
        t = Tensor(np.ones(3), requires_grad=True)
        assert not t.detach().requires_grad

    def test_dropout_identity_in_eval(self):
        t = Tensor(RNG.standard_normal((4, 4)), requires_grad=True)
        out = t.dropout(0.5, np.random.default_rng(0), training=False)
        np.testing.assert_array_equal(out.data, t.data)

    def test_dropout_scales_kept_values(self):
        rng = np.random.default_rng(0)
        t = Tensor(np.ones((100, 100)))
        out = t.dropout(0.5, rng, training=True)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_dropout_invalid_probability(self):
        t = Tensor(np.ones(3))
        with pytest.raises(ValueError):
            t.dropout(1.0, np.random.default_rng(0), training=True)

    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(2, 6),
        cols=st.integers(2, 5),
        hidden=st.integers(1, 4),
    )
    def test_mlp_gradcheck_random_shapes(self, rows, cols, hidden):
        """A small MLP end-to-end gradient check over random shapes."""
        weight1 = Tensor(RNG.standard_normal((cols, hidden)))
        targets = RNG.integers(0, hidden, size=rows)

        def loss_fn(t):
            return (t @ weight1).relu().log_softmax().nll_loss(targets)

        check_gradient(loss_fn, (rows, cols))
