"""Windowed minibatch training: gradient equivalence and resumability.

The windowed trainer's contract is that the execution plan is a *memory*
knob, not a *semantics* knob: accumulate-all-then-step over any window
cover reproduces the full-batch gradient to float tolerance, the one-window
plan IS the full-batch loop (bit-identical), shuffling is seeded and
deterministic, and a checkpointed run resumed mid-way lands on exactly the
parameters of an uninterrupted one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import csa_multiplier
from repro.learn import (
    GamoraNet,
    ModelConfig,
    TrainConfig,
    build_graph_data,
    epoch_gradients,
    load_checkpoint,
    plan_training_windows,
    save_checkpoint,
    train_model,
)
from repro.learn.infer import estimate_training_memory
from repro.nn.optim import Adam, SGD
from repro.utils.rng import seeded_rng

SMALL = ModelConfig(num_layers=4, hidden=16, shared=16, seed=3)


@pytest.fixture(scope="module")
def csa6_data():
    return build_graph_data(csa_multiplier(6).aig)


@pytest.fixture(scope="module")
def tight_budget(csa6_data):
    """A budget forcing a genuinely multi-window plan on csa6."""
    model = GamoraNet(SMALL)
    return estimate_training_memory(
        model, csa6_data.num_nodes, csa6_data.num_edges
    ) // 8


def _params(model) -> dict[str, np.ndarray]:
    return {name: p.data.copy() for name, p in model.named_parameters()}


class TestGradientEquivalence:
    def test_windowed_gradients_match_full_batch(self, csa6_data, tight_budget):
        """Accumulated window gradients == full-batch gradient, per parameter."""
        model = GamoraNet(SMALL)
        plan = plan_training_windows(csa6_data, model, tight_budget)
        assert plan.num_windows > 1, "budget must force multiple windows"
        full = epoch_gradients(model, csa6_data, TrainConfig())
        windowed = epoch_gradients(
            model, csa6_data, TrainConfig(max_window_bytes=tight_budget),
            plan=plan,
        )
        assert full.keys() == windowed.keys()
        for name in full:
            np.testing.assert_allclose(
                windowed[name], full[name], rtol=1e-7, atol=1e-12,
                err_msg=f"gradient mismatch in {name}",
            )

    def test_trained_parameters_match_full_batch(self, csa6_data, tight_budget):
        """A few accumulate-all epochs track the full-batch trajectory.

        Adam normalizes by sqrt(v), which amplifies the per-epoch float
        noise, so the tolerance is looser than the single-epoch gradient
        check — but the trajectories must stay locked together.
        """
        config = dict(epochs=4, shuffle=False)
        model_full, _ = train_model(csa6_data, SMALL, TrainConfig(**config))
        model_win, _ = train_model(
            csa6_data, SMALL,
            TrainConfig(max_window_bytes=tight_budget, **config),
        )
        for name, full in _params(model_full).items():
            np.testing.assert_allclose(
                _params(model_win)[name], full, rtol=1e-5, atol=1e-9,
                err_msg=f"parameter divergence in {name}",
            )

    def test_window_losses_sum_to_full_batch_loss(self, csa6_data, tight_budget):
        """Epoch loss reported by the windowed driver equals full-batch."""
        _, hist_full = train_model(
            csa6_data, SMALL, TrainConfig(epochs=1)
        )
        _, hist_win = train_model(
            csa6_data, SMALL,
            TrainConfig(epochs=1, max_window_bytes=tight_budget),
        )
        assert hist_win[-1]["loss"] == pytest.approx(
            hist_full[-1]["loss"], rel=1e-9
        )


class TestDegeneratePlan:
    def test_one_window_plan_is_bitwise_full_batch(self, csa6_data):
        """A huge budget yields one window and bit-identical training."""
        model = GamoraNet(SMALL)
        plan = plan_training_windows(csa6_data, model, 1 << 40)
        assert plan.num_windows == 1
        config = dict(epochs=3)
        model_none, _ = train_model(csa6_data, SMALL, TrainConfig(**config))
        model_huge, _ = train_model(
            csa6_data, SMALL, TrainConfig(max_window_bytes=1 << 40, **config)
        )
        for name, reference in _params(model_none).items():
            assert np.array_equal(_params(model_huge)[name], reference), name

    def test_single_window_carries_training_slices(self, csa6_data):
        model = GamoraNet(SMALL)
        plan = csa6_data.full_window_plan(model, training=True)
        window = plan.windows[0]
        assert window.labels is not None and window.mask is not None
        assert window.mask.shape == (csa6_data.num_nodes,)
        for task, sliced in window.labels.items():
            np.testing.assert_array_equal(sliced, csa6_data.labels[task])


class TestShuffleDeterminism:
    def test_same_seed_same_parameters(self, csa6_data, tight_budget):
        """Seeded shuffle + per-window stepping is bitwise reproducible."""
        config = dict(epochs=3, max_window_bytes=tight_budget, seed=11,
                      step_every=1)
        model_a, hist_a = train_model(csa6_data, SMALL, TrainConfig(**config))
        model_b, hist_b = train_model(csa6_data, SMALL, TrainConfig(**config))
        for name, reference in _params(model_a).items():
            assert np.array_equal(_params(model_b)[name], reference), name
        assert hist_a == hist_b

    def test_different_seed_different_order(self, csa6_data, tight_budget):
        """Different seeds visit windows in different orders (step_every=1
        makes the order observable in the final parameters)."""
        base = dict(epochs=2, max_window_bytes=tight_budget, step_every=1)
        model_a, _ = train_model(csa6_data, SMALL, TrainConfig(seed=1, **base))
        model_b, _ = train_model(csa6_data, SMALL, TrainConfig(seed=2, **base))
        assert any(
            not np.array_equal(_params(model_a)[name], _params(model_b)[name])
            for name in _params(model_a)
        )


class TestCheckpointResume:
    def test_resume_is_bit_identical(self, csa6_data, tight_budget, tmp_path):
        """3 epochs + resume to 6 == 6 straight epochs, bit for bit."""
        ck = tmp_path / "run.ckpt"
        shared = dict(max_window_bytes=tight_budget, seed=11)
        model_straight, hist_straight = train_model(
            csa6_data, SMALL, TrainConfig(epochs=6, **shared)
        )
        train_model(csa6_data, SMALL, TrainConfig(
            epochs=3, checkpoint_every=1, checkpoint_path=str(ck), **shared
        ))
        assert ck.exists()
        model_resumed, hist_resumed = train_model(csa6_data, SMALL, TrainConfig(
            epochs=6, checkpoint_every=1, checkpoint_path=str(ck), **shared
        ))
        for name, reference in _params(model_straight).items():
            assert np.array_equal(_params(model_resumed)[name], reference), name
        # The resumed history additionally carries the first leg's final
        # record (epoch 2 was that run's last epoch); the shared tail must
        # be bit-identical.
        assert hist_resumed[-1] == hist_straight[-1]

    def test_checkpoint_roundtrips_optimizer_and_rng(self, csa6_data, tmp_path):
        ck = tmp_path / "state.ckpt"
        model = GamoraNet(SMALL)
        optimizer = Adam(model.parameters(), lr=0.01)
        rng = seeded_rng(5)
        # Advance all three kinds of state past their initial values.
        grads = epoch_gradients(model, csa6_data)
        for param, grad in zip(model.parameters(),
                               [grads[n] for n, _ in model.named_parameters()]):
            param.grad = grad
        optimizer.step()
        rng.permutation(100)
        save_checkpoint(ck, model, optimizer, rng, next_epoch=7,
                        history=[{"epoch": 0, "loss": 1.5}])

        restored_model = GamoraNet(SMALL)
        restored_opt = Adam(restored_model.parameters(), lr=0.01)
        restored_rng = seeded_rng(5)
        next_epoch, history = load_checkpoint(ck, restored_model,
                                              restored_opt, restored_rng)
        assert next_epoch == 7
        assert history == [{"epoch": 0, "loss": 1.5}]
        assert restored_opt._step_count == optimizer._step_count
        for a, b in zip(optimizer._m, restored_opt._m):
            assert np.array_equal(a, b)
        for a, b in zip(optimizer._v, restored_opt._v):
            assert np.array_equal(a, b)
        assert restored_rng.bit_generator.state == rng.bit_generator.state
        for name, reference in _params(model).items():
            assert np.array_equal(_params(restored_model)[name], reference)

    def test_checkpoint_rejects_config_mismatch(self, csa6_data, tmp_path):
        ck = tmp_path / "mismatch.ckpt"
        model = GamoraNet(SMALL)
        optimizer = Adam(model.parameters())
        save_checkpoint(ck, model, optimizer, seeded_rng(0), 1, [])
        other = GamoraNet(ModelConfig(num_layers=2, hidden=8, shared=8))
        with pytest.raises(ValueError, match="different model config"):
            load_checkpoint(ck, other, Adam(other.parameters()))

    def test_sgd_state_roundtrip(self):
        """The optimizer state protocol also covers SGD momentum."""
        rng = seeded_rng(0)
        from repro.nn.tensor import Tensor

        params = [Tensor(rng.normal(size=(3, 2)), requires_grad=True)]
        opt = SGD(params, lr=0.1, momentum=0.9)
        params[0].grad = np.ones((3, 2))
        opt.step()
        clone_params = [Tensor(params[0].data.copy(), requires_grad=True)]
        clone = SGD(clone_params, lr=0.1, momentum=0.9)
        clone.load_state_dict(opt.state_dict())
        assert np.array_equal(clone._velocity[0], opt._velocity[0])
        with pytest.raises(ValueError, match="not an SGD"):
            clone.load_state_dict({"kind": "adam"})


class TestWindowedTrainingEndToEnd:
    @pytest.mark.slow
    def test_windowed_training_learns(self, csa6_data, tight_budget):
        """Windowed training reaches full-batch-grade accuracy on csa6."""
        model, history = train_model(
            csa6_data, SMALL,
            TrainConfig(epochs=120, max_window_bytes=tight_budget, seed=7),
        )
        final = history[-1]
        assert final["num_windows"] > 1
        assert final["peak_window_bytes"] <= tight_budget
        assert final["mean"] > 0.9

    def test_history_records_plan_shape(self, csa6_data, tight_budget):
        _, history = train_model(
            csa6_data, SMALL,
            TrainConfig(epochs=2, max_window_bytes=tight_budget),
        )
        record = history[-1]
        assert record["num_windows"] > 1
        assert 0 < record["peak_window_bytes"] <= tight_budget

    def test_minibatch_stepping_learns(self, csa6_data, tight_budget):
        """step_every=1 (true minibatch SGD over windows) still trains."""
        _, history = train_model(
            csa6_data, SMALL,
            TrainConfig(epochs=30, max_window_bytes=tight_budget,
                        step_every=1, seed=3),
        )
        assert history[-1]["mean"] > 0.7

    def test_evaluate_model_streams_under_budget(self, csa6_data):
        """evaluate_model with a budget routes through the streamed kernel
        and returns the same accuracies as the unbounded float64 path."""
        from repro.learn import compile_inference, estimate_inference_memory
        from repro.learn.trainer import evaluate_model

        model, _ = train_model(csa6_data, SMALL, TrainConfig(epochs=10))
        kernel = compile_inference(model)
        full_bytes = estimate_inference_memory(
            kernel, csa6_data.num_nodes, csa6_data.num_edges
        )
        exact = evaluate_model(model, csa6_data)
        streamed = evaluate_model(model, csa6_data,
                                  max_window_bytes=full_bytes // 4)
        assert set(streamed) == set(exact)
        # float32 kernel vs float64 forward: labels can flip only where the
        # two dtypes argmax differently; accuracies must agree closely.
        for key in exact:
            assert streamed[key] == pytest.approx(exact[key], abs=0.02)
