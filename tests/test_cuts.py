"""Tests for k-feasible cut enumeration and cut functions."""

from repro.aig import AIG, lit_var
from repro.aig.cuts import Cut, enumerate_cuts, node_cuts
from repro.aig.npn import is_maj_truth, is_xor_truth
from repro.generators.components import full_adder


def build_xor3():
    aig = AIG()
    a, b, c = aig.add_inputs(3)
    y = aig.add_xor(aig.add_xor(a, b), c)
    aig.add_output(y)
    return aig, (a, b, c), y


class TestCutProperties:
    def test_pi_has_only_trivial_cut(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        aig.add_and(a, b)
        cuts = enumerate_cuts(aig)
        assert cuts[lit_var(a)] == [Cut((lit_var(a),), 0b10)]

    def test_and_node_cuts(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        y = aig.add_and(a, b)
        cuts = enumerate_cuts(aig)[lit_var(y)]
        leaves = {c.leaves for c in cuts}
        assert (lit_var(a), lit_var(b)) in leaves  # the fan-in cut
        assert (lit_var(y),) in leaves  # the trivial cut

    def test_cut_truth_of_and(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        y = aig.add_and(a, b)
        cuts = enumerate_cuts(aig)[lit_var(y)]
        fanin_cut = next(c for c in cuts if c.size == 2)
        assert fanin_cut.truth == 0b1000  # AND2

    def test_cut_sizes_bounded(self, csa4):
        for cuts in enumerate_cuts(csa4.aig, k=3):
            for cut in cuts:
                assert cut.size <= 3

    def test_max_cuts_respected(self, csa4):
        limit = 4
        for cuts in enumerate_cuts(csa4.aig, k=3, max_cuts=limit):
            assert len(cuts) <= limit + 1  # plus the trivial cut

    def test_no_dominated_cuts(self, csa4):
        for cuts in enumerate_cuts(csa4.aig, k=3):
            nontrivial = [c for c in cuts if c.size > 1]
            for i, ci in enumerate(nontrivial):
                for j, cj in enumerate(nontrivial):
                    if i != j:
                        assert not (
                            set(ci.leaves) < set(cj.leaves)
                        ), f"{ci} dominates {cj} but both kept"

    def test_k_must_be_at_least_two(self):
        import pytest

        with pytest.raises(ValueError):
            enumerate_cuts(AIG(), k=1)


class TestCutFunctions:
    def test_xor3_detected_through_cut(self):
        aig, (a, b, c), y = build_xor3()
        cuts = enumerate_cuts(aig)[lit_var(y)]
        leaf_target = tuple(sorted(lit_var(x) for x in (a, b, c)))
        match = next(c for c in cuts if c.leaves == leaf_target)
        assert is_xor_truth(match.truth, 3)

    def test_full_adder_roots_have_xor_and_maj_cuts(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        s, co = full_adder(aig, a, b, c)
        aig.add_output(s)
        aig.add_output(co)
        cuts = enumerate_cuts(aig)
        leaf_target = tuple(sorted(lit_var(x) for x in (a, b, c)))
        sum_cut = next(k for k in cuts[lit_var(s)] if k.leaves == leaf_target)
        carry_cut = next(k for k in cuts[lit_var(co)] if k.leaves == leaf_target)
        assert is_xor_truth(sum_cut.truth, 3)
        assert is_maj_truth(carry_cut.truth, 3)

    def test_complemented_inputs_stay_in_npn_class(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        from repro.aig import lit_not

        y = aig.add_xor(lit_not(a), b)  # XNOR
        cuts = enumerate_cuts(aig)[lit_var(y)]
        pair = next(c for c in cuts if c.size == 2)
        assert is_xor_truth(pair.truth, 2)


class TestNodeCuts:
    def test_local_cuts_match_global(self, csa4):
        global_cuts = enumerate_cuts(csa4.aig, k=3, max_cuts=8)
        for var in list(csa4.aig.and_vars())[:20]:
            local = node_cuts(csa4.aig, var, k=3, max_cuts=8)
            assert {c.leaves for c in local} == {c.leaves for c in global_cuts[var]}
            local_by_leaves = {c.leaves: c.truth for c in local}
            for cut in global_cuts[var]:
                assert local_by_leaves[cut.leaves] == cut.truth
