"""Training, metrics, and inference tests for the learning pipeline.

Model-quality tests train tiny models on mult4/mult6 with reduced epochs to
stay fast; the benchmark harnesses exercise paper-scale settings.
"""

import numpy as np
import pytest

from repro.generators import csa_multiplier
from repro.learn import (
    GamoraNet,
    ModelConfig,
    TrainConfig,
    batch_graphs,
    build_graph_data,
    decode_single_task,
    deep_config,
    encode_single_task,
    estimate_inference_memory,
    evaluate_model,
    batched_inference,
    multitask_accuracy,
    predict_labels,
    shallow_config,
    task_accuracy,
    timed_inference,
    train_model,
)
from repro.learn.metrics import confusion_matrix, per_class_recall


@pytest.fixture(scope="module")
def tiny_trained():
    data = build_graph_data(csa_multiplier(6).aig)
    model, history = train_model(
        data, shallow_config(), TrainConfig(epochs=150)
    )
    return model, data, history


class TestModelShape:
    def test_configs(self):
        assert shallow_config().num_layers == 4
        assert shallow_config().hidden == 32
        assert deep_config().num_layers == 8
        assert deep_config().hidden == 80

    def test_forward_shapes(self, csa4):
        data = build_graph_data(csa4.aig)
        model = GamoraNet(shallow_config())
        out = model(data.features, data.adjacency)
        assert out["root"].shape == (data.num_nodes, 4)
        assert out["xor"].shape == (data.num_nodes, 2)
        assert out["maj"].shape == (data.num_nodes, 2)

    def test_single_task_head(self, csa4):
        data = build_graph_data(csa4.aig)
        model = GamoraNet(ModelConfig(num_layers=2, hidden=8, single_task=True))
        out = model(data.features, data.adjacency)
        assert out["single"].shape == (data.num_nodes, 16)
        predictions = model.predict(data.features, data.adjacency)
        assert set(predictions) == {"root", "xor", "maj"}

    def test_describe_mentions_size(self):
        text = GamoraNet(shallow_config()).describe()
        assert "4 layers" in text and "32 hidden" in text

    def test_deterministic_init(self):
        first = GamoraNet(shallow_config(seed=7))
        second = GamoraNet(shallow_config(seed=7))
        for (n1, p1), (n2, p2) in zip(first.named_parameters(), second.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)


class TestSingleTaskEncoding:
    def test_roundtrip(self):
        labels = {
            "root": np.array([0, 1, 2, 3, 2]),
            "xor": np.array([0, 1, 0, 1, 1]),
            "maj": np.array([1, 0, 0, 1, 0]),
        }
        decoded = decode_single_task(encode_single_task(labels))
        for task in labels:
            np.testing.assert_array_equal(decoded[task], labels[task])

    def test_distinct_codes(self):
        seen = set()
        for root in range(4):
            for xor in range(2):
                for maj in range(2):
                    code = int(encode_single_task({
                        "root": np.array([root]),
                        "xor": np.array([xor]),
                        "maj": np.array([maj]),
                    })[0])
                    assert code not in seen
                    seen.add(code)
        assert seen == set(range(16))


class TestTraining:
    def test_loss_decreases(self, tiny_trained):
        _model, _data, history = tiny_trained
        assert history[-1]["loss"] < 1.0

    def test_training_fits_small_graph(self, tiny_trained):
        model, data, _history = tiny_trained
        metrics = evaluate_model(model, data)
        assert metrics["xor"] > 0.97
        assert metrics["maj"] > 0.95
        assert metrics["mean"] > 0.9

    def test_generalizes_to_larger(self, tiny_trained):
        model, _data, _history = tiny_trained
        larger = build_graph_data(csa_multiplier(10).aig)
        metrics = evaluate_model(model, larger)
        assert metrics["xor"] > 0.95
        assert metrics["mean"] > 0.88

    def test_multi_graph_training(self):
        graphs = [
            build_graph_data(csa_multiplier(w).aig) for w in (4, 6)
        ]
        model, history = train_model(
            graphs, shallow_config(), TrainConfig(epochs=60)
        )
        assert history[-1]["mean"] > 0.7

    def test_single_task_trains(self, csa4):
        data = build_graph_data(csa4.aig)
        model, history = train_model(
            data,
            ModelConfig(num_layers=2, hidden=16, single_task=True),
            TrainConfig(epochs=80),
        )
        assert history[-1]["loss"] < history[0]["loss"] if len(history) > 1 else True
        metrics = evaluate_model(model, data)
        assert 0.0 <= metrics["mean"] <= 1.0

    def test_evaluate_requires_labels(self, tiny_trained, csa4):
        model, _data, _history = tiny_trained
        unlabeled = build_graph_data(csa4.aig, with_labels=False)
        with pytest.raises(ValueError):
            evaluate_model(model, unlabeled)


class TestMetrics:
    def test_task_accuracy_with_mask(self):
        predicted = np.array([1, 0, 1, 1])
        target = np.array([1, 1, 1, 0])
        mask = np.array([True, True, True, False])
        assert task_accuracy(predicted, target, mask) == pytest.approx(2 / 3)

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            task_accuracy(np.array([1]), np.array([1]), np.array([False]))

    def test_multitask_joint_le_min(self):
        predictions = {
            "a": np.array([1, 0, 1, 0]),
            "b": np.array([0, 0, 1, 1]),
        }
        targets = {
            "a": np.array([1, 1, 1, 0]),
            "b": np.array([0, 1, 1, 0]),
        }
        metrics = multitask_accuracy(predictions, targets)
        assert metrics["joint"] <= min(metrics["a"], metrics["b"])
        assert metrics["mean"] == pytest.approx((metrics["a"] + metrics["b"]) / 2)

    def test_confusion_matrix_totals(self):
        predicted = np.array([0, 1, 1, 2])
        target = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(predicted, target, 3)
        assert matrix.sum() == 4
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1

    def test_per_class_recall(self):
        predicted = np.array([0, 0, 1, 1])
        target = np.array([0, 1, 1, 1])
        recall = per_class_recall(predicted, target, 3)
        assert recall[0] == 1.0
        assert recall[1] == pytest.approx(2 / 3)
        assert recall[2] == 1.0  # empty class defaults to 1


class TestInference:
    def test_timed_inference(self, tiny_trained):
        model, data, _history = tiny_trained
        result = timed_inference(model, data)
        assert result.seconds > 0
        assert result.num_nodes == data.num_nodes
        assert set(result.predictions) == {"root", "xor", "maj"}

    def test_batched_inference_covers_all(self, tiny_trained):
        model, _data, _history = tiny_trained
        graphs = [build_graph_data(csa_multiplier(w).aig, with_labels=False) for w in (4, 5, 6)]
        results = batched_inference(model, graphs, batch_size=2)
        assert len(results) == 2  # [4,5] then [6]
        assert results[0].num_nodes == graphs[0].num_nodes + graphs[1].num_nodes

    def test_batched_matches_unbatched(self, tiny_trained):
        """Block-diagonal batching must not change predictions."""
        model, _data, _history = tiny_trained
        graphs = [build_graph_data(csa_multiplier(w).aig, with_labels=False) for w in (4, 6)]
        merged = batch_graphs(graphs)
        merged_pred = predict_labels(model, merged)
        solo_pred = predict_labels(model, graphs[0])
        np.testing.assert_array_equal(
            merged_pred["xor"][: graphs[0].num_nodes], solo_pred["xor"]
        )

    def test_batched_inference_split_fans_out_per_design(self, tiny_trained):
        """split=True returns one result per design with its own rows."""
        model, _data, _history = tiny_trained
        graphs = [build_graph_data(csa_multiplier(w).aig, with_labels=False) for w in (4, 5, 6)]
        per_design = batched_inference(model, graphs, batch_size=2, split=True)
        assert len(per_design) == len(graphs)
        for graph, result in zip(graphs, per_design):
            assert result.num_nodes == graph.num_nodes
            solo = timed_inference(model, graph).predictions
            for task in solo:
                np.testing.assert_array_equal(result.predictions[task], solo[task])

    def test_bad_batch_size(self, tiny_trained):
        model, data, _history = tiny_trained
        with pytest.raises(ValueError):
            batched_inference(model, [data], batch_size=0)

    def test_memory_estimate_scales_linearly(self, tiny_trained):
        model, _data, _history = tiny_trained
        small = estimate_inference_memory(model, 1000, 2000)
        large = estimate_inference_memory(model, 10000, 20000)
        assert 9.0 < large / small < 11.0

    def test_memory_estimate_positive(self, tiny_trained):
        model, data, _history = tiny_trained
        estimate = estimate_inference_memory(model, data.num_nodes, data.num_edges)
        assert estimate > 0
