"""The compiled float32 inference kernel must agree with the reference."""

import numpy as np
import pytest

from repro.generators import csa_multiplier
from repro.learn import (
    FastInference,
    GamoraNet,
    ModelConfig,
    TrainConfig,
    build_graph_data,
    compile_inference,
    shallow_config,
    train_model,
)


@pytest.fixture(scope="module")
def trained():
    data = build_graph_data(csa_multiplier(6).aig)
    model, _history = train_model(data, shallow_config(), TrainConfig(epochs=150))
    return model, data


class TestAgreement:
    def test_labels_match_reference(self, trained):
        model, data = trained
        kernel = compile_inference(model)
        reference = model.predict(data.features, data.adjacency)
        fast = kernel.predict(data.features, data.adjacency)
        for task in reference:
            agreement = float(np.mean(reference[task] == fast[task]))
            assert agreement > 0.999, f"{task}: fast kernel diverged"

    def test_agreement_on_unseen_graph(self, trained):
        model, _data = trained
        kernel = compile_inference(model)
        other = build_graph_data(csa_multiplier(10).aig, with_labels=False)
        reference = model.predict(other.features, other.adjacency)
        fast = kernel.predict(other.features, other.adjacency)
        for task in reference:
            assert float(np.mean(reference[task] == fast[task])) > 0.999

    def test_logits_close_to_float64_head_inputs(self, trained):
        model, data = trained
        kernel = compile_inference(model)
        logits = kernel.logits(data.features, data.adjacency)
        assert set(logits) == {"root", "xor", "maj"}
        for out in logits.values():
            assert out.dtype == np.float32
            assert np.isfinite(out).all()


class TestSingleTask:
    def test_single_task_decoding(self):
        config = ModelConfig(num_layers=2, hidden=8, single_task=True)
        model = GamoraNet(config)
        data = build_graph_data(csa_multiplier(4).aig, with_labels=False)
        kernel = compile_inference(model)
        fast = kernel.predict(data.features, data.adjacency)
        reference = model.predict(data.features, data.adjacency)
        for task in ("root", "xor", "maj"):
            assert float(np.mean(reference[task] == fast[task])) > 0.999


class TestKernelProperties:
    def test_compile_is_a_snapshot(self, trained):
        """Mutating the source model after compilation must not change the
        kernel (deployment artifacts are frozen)."""
        model, data = trained
        kernel = compile_inference(model)
        before = kernel.predict(data.features, data.adjacency)
        for param in model.parameters():
            param.data = param.data * 0.0
        after = kernel.predict(data.features, data.adjacency)
        for task in before:
            np.testing.assert_array_equal(before[task], after[task])

    def test_fast_is_faster(self, trained):
        import time

        model, _data = trained
        data = build_graph_data(csa_multiplier(16).aig, with_labels=False)
        kernel = compile_inference(model)
        kernel.predict(data.features, data.adjacency)  # warm up
        start = time.perf_counter()
        kernel.predict(data.features, data.adjacency)
        fast_time = time.perf_counter() - start
        start = time.perf_counter()
        model.predict(data.features, data.adjacency)
        slow_time = time.perf_counter() - start
        assert fast_time < slow_time * 1.5  # generous: noise-proof bound

    def test_isinstance_contract(self, trained):
        model, _data = trained
        assert isinstance(compile_inference(model), FastInference)
