"""Tests for shared utilities (timing, RNG)."""

import time

import numpy as np
import pytest

from repro.utils import Timer, format_seconds, seeded_rng


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_lap_and_restart(self):
        with Timer() as timer:
            first = timer.lap()
            timer.restart()
            second = timer.lap()
        assert first >= 0.0
        assert second >= 0.0


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,expect",
        [
            (0.0000012, "us"),
            (0.0012, "ms"),
            (1.2, "s"),
            (75.0, "1m"),
        ],
    )
    def test_units(self, value, expect):
        assert expect in format_seconds(value)

    def test_minute_format(self):
        assert format_seconds(125.5) == "2m 5.5s"


class TestSeededRng:
    def test_default_seed_is_stable(self):
        a = seeded_rng().integers(0, 1 << 30, size=5)
        b = seeded_rng().integers(0, 1 << 30, size=5)
        np.testing.assert_array_equal(a, b)

    def test_explicit_seed_differs(self):
        a = seeded_rng(1).integers(0, 1 << 30, size=5)
        b = seeded_rng(2).integers(0, 1 << 30, size=5)
        assert not np.array_equal(a, b)
