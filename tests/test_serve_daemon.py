"""Concurrency and daemon-lifecycle tests for the serving layer.

Three invariant families the always-on daemon depends on:

* **Thread safety** — the structural-hash LRU and the service's lazy
  model fingerprint survive multi-threaded hammering with consistent
  counters and exactly-once builds; concurrent ``reason_many`` calls
  from many threads stay bit-identical to the sequential path.
* **Worker resilience** — a hard post-processing worker crash breaks the
  whole ``ProcessPoolExecutor``; the pool must recover by replacing the
  executor (bounded by ``MAX_EXECUTOR_RESTARTS``) instead of silently
  serving in-process forever.
* **Daemon lifecycle** — concurrent requests coalesce into shared
  micro-batches (fewer forward passes than requests), admission control
  fast-fails with a retriable error, injected worker crashes never lose
  a request, and the warm caches survive a daemon restart through the
  persistent spill.
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.core import Gamora
from repro.generators import booth_multiplier, csa_multiplier
from repro.learn import TrainConfig
from repro.serve import (
    DaemonClient,
    DaemonServer,
    GamoraDaemon,
    PostprocessPool,
    QueueFullError,
    ReasoningService,
    SchedulerClosedError,
    SocketDaemonClient,
    StructuralHashCache,
)
from repro.serve.workers import FAULT_ENV, MAX_EXECUTOR_RESTARTS

from tests.test_serve_batching import assert_outcome_equal, tree_key


@pytest.fixture(scope="module")
def gamora():
    model = Gamora(model="shallow", train_config=TrainConfig(epochs=60))
    model.fit([csa_multiplier(6)])
    return model


@pytest.fixture(scope="module")
def circuits():
    return [csa_multiplier(4).aig, csa_multiplier(5).aig,
            booth_multiplier(4).aig]


@pytest.fixture(scope="module")
def sequential(gamora, circuits):
    return [gamora.reason(aig) for aig in circuits]


def run_threads(count, target):
    threads = [threading.Thread(target=target, args=(i,))
               for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestCacheThreadSafety:
    def test_hammer_mixed_operations(self):
        cache = StructuralHashCache(capacity=8)
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(300):
                    key = f"k{rng.integers(0, 16)}"
                    op = rng.integers(0, 3)
                    if op == 0:
                        cache.put(key, "fp", {"payload": key})
                    elif op == 1:
                        value = cache.get(key, "fp")
                        if value is not None:
                            assert value["payload"] == key
                    else:
                        value = cache.get_or_build(
                            key, "fp", lambda k=key: {"payload": k}
                        )
                        assert value["payload"] == key
                    assert len(cache) <= cache.capacity
            except Exception as error:  # surfaced after join
                errors.append(error)

        run_threads(8, worker)
        assert not errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] > 0
        assert len(cache) <= cache.capacity

    def test_get_or_build_builds_exactly_once_per_key(self):
        cache = StructuralHashCache(capacity=64)
        built = []  # list.append is atomic under the GIL
        barrier = threading.Barrier(8)

        def worker(_):
            barrier.wait()
            for index in range(16):
                key = f"k{index}"

                def build(k=key):
                    built.append(k)
                    return {"payload": k}

                value = cache.get_or_build(key, "fp", build)
                assert value["payload"] == key

        run_threads(8, worker)
        # Capacity exceeds the key count, so every key builds exactly
        # once: the loser of a race must be served the winner's entry.
        assert sorted(built) == sorted(f"k{i}" for i in range(16))

    def test_model_fingerprint_concurrent_init(self, gamora):
        service = ReasoningService(gamora)
        results = [None] * 8
        barrier = threading.Barrier(8)

        def worker(index):
            barrier.wait()
            results[index] = service._model_fingerprint()

        run_threads(8, worker)
        assert len(set(results)) == 1
        assert results[0] == service._model_fingerprint()


class TestConcurrentReasonMany:
    def test_threads_match_sequential(self, gamora, circuits, sequential):
        service = ReasoningService(gamora)
        batches = [None] * 6
        barrier = threading.Barrier(6)

        def worker(index):
            barrier.wait()
            batches[index] = service.reason_many(circuits)

        run_threads(6, worker)
        for batch in batches:
            assert len(batch) == len(circuits)
            for outcome, expected in zip(batch, sequential):
                assert_outcome_equal(outcome, expected)


class TestExecutorRestart:
    @pytest.fixture()
    def payload(self, gamora, circuits):
        aig = circuits[0]
        return aig, gamora.predict(aig)

    @staticmethod
    def crash_once(pool, payload, monkeypatch):
        """Submit with a hard-crash fault armed; returns the fallback result."""
        aig, labels = payload
        monkeypatch.setenv(FAULT_ENV, "exit")
        handle = pool.submit(aig, labels, False, True, 4, "fast")
        extraction, _ = handle.get()  # parent fallback, env not consulted
        monkeypatch.delenv(FAULT_ENV)
        return extraction

    def test_broken_executor_is_replaced(self, payload, monkeypatch,
                                         sequential):
        pool = PostprocessPool(workers=1)
        if not pool.parallel:
            pytest.skip("fork unavailable")
        with pool:
            extraction = self.crash_once(pool, payload, monkeypatch)
            assert tree_key(extraction.tree) == tree_key(sequential[0].tree)
            assert pool.fallbacks == 1
            assert not pool.parallel  # the crash broke the executor
            # Next submit replaces the executor and runs in a worker again.
            aig, labels = payload
            handle = pool.submit(aig, labels, False, True, 4, "fast")
            extraction, _ = handle.get()
            assert tree_key(extraction.tree) == tree_key(sequential[0].tree)
            assert pool.restarts == 1
            assert pool.parallel
            assert pool.fallbacks == 1  # the healthy submit cost nothing

    def test_restarts_are_bounded(self, payload, monkeypatch, sequential):
        pool = PostprocessPool(workers=1)
        if not pool.parallel:
            pytest.skip("fork unavailable")
        with pool:
            for _ in range(MAX_EXECUTOR_RESTARTS + 1):
                self.crash_once(pool, payload, monkeypatch)
            assert pool.restarts == MAX_EXECUTOR_RESTARTS
            # Budget exhausted: in-process permanently, results still good.
            aig, labels = payload
            extraction, _ = pool.submit(
                aig, labels, False, True, 4, "fast"
            ).get()
            assert tree_key(extraction.tree) == tree_key(sequential[0].tree)
            assert not pool.parallel
            assert pool.workers == 0

    def test_service_surfaces_restart_count(self, gamora, circuits,
                                            sequential, monkeypatch):
        """An injected soft fault during reason_many loses nothing and the
        stats carry the pool's fallback/restart counters."""
        service = ReasoningService(gamora, result_cache_size=0)
        monkeypatch.setenv(FAULT_ENV, "1")
        batch = service.reason_many(circuits, postprocess_workers=2)
        monkeypatch.delenv(FAULT_ENV)
        for outcome, expected in zip(batch, sequential):
            assert_outcome_equal(outcome, expected)
        assert batch.stats.postprocess_fallbacks == len(circuits)
        assert batch.stats.postprocess_restarts == 0  # soft faults: no break


class TestDaemonCoalescing:
    def test_concurrent_requests_share_batches(self, gamora, circuits,
                                               sequential, tmp_path):
        run_dir = tmp_path / "runs"
        with GamoraDaemon(gamora, batch_window_ms=250,
                          run_dir=run_dir) as daemon:
            client = DaemonClient(daemon)
            assert client.ping()["ok"]
            responses = [None] * 8
            barrier = threading.Barrier(8)

            def worker(index):
                barrier.wait()
                responses[index] = client.reason(
                    circuits[index % 2], request_id=f"req-{index}"
                )

            run_threads(8, worker)
            assert all(response["ok"] for response in responses)
            # Coalescing: dedup collapses 8 requests over 2 structures
            # into strictly fewer forward passes than requests.
            stats = daemon.scheduler.stats()
            assert stats["completed"] == 8
            assert stats["max_coalesced"] > 1
            assert stats["num_shards"] < 8
            assert stats["batches"] < 8
            # Bit-identity through the whole protocol path.
            for index, response in enumerate(responses):
                expected = sequential[index % 2]
                result = response["result"]
                assert result["num_full_adders"] == expected.tree.num_full_adders
                assert result["num_half_adders"] == expected.tree.num_half_adders
                assert result["num_mismatches"] == expected.num_mismatches
                assert result["report"] is not None
            # Every request got its run-dir stats file.
            for index in range(8):
                record = json.loads(
                    (run_dir / f"req-{index}" / "stats.json").read_text()
                )
                assert record["request_id"] == f"req-{index}"
                assert record["queue_wait_seconds"] >= 0
                assert record["batch_stats"]["batch_size"] >= 1
                assert (record["result_hit"]
                        == (record["shard_index"] is None))

    def test_submit_matches_sequential(self, gamora, circuits, sequential):
        with GamoraDaemon(gamora, batch_window_ms=1) as daemon:
            for aig, expected in zip(circuits, sequential):
                outcome, stats = daemon.submit(aig)
                assert_outcome_equal(outcome, expected)
                assert stats.batch_id >= 1
            # Same circuit again: served from the warm result cache.
            outcome, stats = daemon.submit(circuits[0])
            assert stats.result_hit and stats.shard_index is None
            assert_outcome_equal(outcome, sequential[0])

    def test_mixed_options_split_into_groups(self, gamora, circuits):
        with GamoraDaemon(gamora, batch_window_ms=300) as daemon:
            tickets = [
                daemon.submit_async(circuits[0], correct_lsb=True),
                daemon.submit_async(circuits[0], correct_lsb=False),
            ]
            stats = [ticket.stats(timeout=120) for ticket in tickets]
            # One micro-batch, two option groups, each run separately.
            assert stats[0].batch_id == stats[1].batch_id
            assert stats[0].batch_size == 2
            assert {s.group_size for s in stats} == {1}


class TestBackpressure:
    def test_queue_full_fast_fails_retriable(self, gamora, circuits):
        daemon = GamoraDaemon(gamora, batch_window_ms=2000,
                              max_queue_depth=2)
        daemon.start()
        try:
            admitted = [daemon.submit_async(circuits[0]),
                        daemon.submit_async(circuits[1])]
            with pytest.raises(QueueFullError) as info:
                daemon.submit_async(circuits[2])
            assert info.value.retriable
            assert daemon.scheduler.stats()["rejected"] == 1
        finally:
            daemon.close()
        # Graceful close drained the admitted work.
        for ticket in admitted:
            assert ticket.result(0) is not None

    def test_queue_full_over_the_protocol(self, gamora, circuits):
        daemon = GamoraDaemon(gamora, batch_window_ms=2000,
                              max_queue_depth=1)
        daemon.start()
        try:
            client = DaemonClient(daemon)
            daemon.submit_async(circuits[0])  # occupy the only slot
            response = client.reason(circuits[1])
            assert not response["ok"]
            assert response["error"]["type"] == "queue_full"
            assert response["error"]["retriable"] is True
        finally:
            daemon.close()

    def test_submit_after_close_raises(self, gamora, circuits):
        daemon = GamoraDaemon(gamora, batch_window_ms=1)
        daemon.start()
        daemon.close()
        with pytest.raises(SchedulerClosedError):
            daemon.submit_async(circuits[0])

    def test_stop_without_drain_fails_tickets(self, gamora, circuits):
        daemon = GamoraDaemon(gamora, batch_window_ms=5000)
        daemon.start()
        ticket = daemon.submit_async(circuits[0])
        daemon.scheduler.stop(drain=False)
        with pytest.raises(SchedulerClosedError):
            ticket.result(timeout=10)
        daemon.close()


class TestDaemonFaultRecovery:
    def test_injected_worker_crash_loses_no_request(self, gamora, circuits,
                                                    sequential, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "exit")
        with GamoraDaemon(gamora, batch_window_ms=150, result_cache_size=0,
                          postprocess_workers=2) as daemon:
            client = DaemonClient(daemon)
            responses = [None] * 4
            barrier = threading.Barrier(4)

            def worker(index):
                barrier.wait()
                responses[index] = client.reason(circuits[index % 3])

            run_threads(4, worker)
            assert all(response["ok"] for response in responses)
            for index, response in enumerate(responses):
                expected = sequential[index % 3]
                assert (response["result"]["num_full_adders"]
                        == expected.tree.num_full_adders)
                assert (response["result"]["num_mismatches"]
                        == expected.num_mismatches)

    def test_service_error_fails_only_that_batch(self, gamora, circuits,
                                                 sequential, monkeypatch):
        with GamoraDaemon(gamora, batch_window_ms=1) as daemon:
            def boom(*args, **kwargs):
                raise RuntimeError("injected service failure")

            monkeypatch.setattr(daemon.service, "reason_many", boom)
            ticket = daemon.submit_async(circuits[0])
            with pytest.raises(RuntimeError, match="injected"):
                ticket.result(timeout=120)
            monkeypatch.undo()
            # The scheduler thread survived: the next request succeeds.
            outcome, _ = daemon.submit(circuits[0])
            assert_outcome_equal(outcome, sequential[0])
            assert daemon.scheduler.stats()["failed"] == 1


class TestCachePersistenceAcrossRestart:
    def test_warm_restart_serves_hits(self, gamora, circuits, sequential,
                                      tmp_path):
        cache_dir = tmp_path / "cache"
        with GamoraDaemon(gamora, batch_window_ms=1,
                          cache_dir=cache_dir) as first:
            for aig in circuits:
                first.submit(aig)
        assert first.saved_results == len(circuits)
        assert first.saved_graphs == len(circuits)
        assert first.spill_error is None

        with GamoraDaemon(gamora, batch_window_ms=1,
                          cache_dir=cache_dir) as second:
            assert second.loaded_results == len(circuits)
            assert second.loaded_graphs == len(circuits)
            for aig, expected in zip(circuits, sequential):
                outcome, stats = second.submit(aig)
                assert stats.result_hit
                assert_outcome_equal(outcome, expected)
            assert second.scheduler.stats()["num_shards"] == 0
        # Nothing new was computed, so nothing new spills.
        assert second.saved_results == 0

    def test_spilled_reports_survive(self, gamora, circuits, tmp_path):
        cache_dir = tmp_path / "cache"
        with GamoraDaemon(gamora, batch_window_ms=1,
                          cache_dir=cache_dir) as first:
            report = first.submit(circuits[0])[0].report
        assert report is not None
        with GamoraDaemon(gamora, batch_window_ms=1,
                          cache_dir=cache_dir) as second:
            outcome, stats = second.submit(circuits[0])
            assert stats.result_hit
            assert outcome.report == report


class TestSocketProtocol:
    def test_concurrent_clients_round_trip(self, gamora, circuits,
                                           sequential, tmp_path):
        socket_path = tmp_path / "gamora.sock"
        daemon = GamoraDaemon(gamora, batch_window_ms=200).start()
        server = DaemonServer(daemon, socket_path).start()
        try:
            responses = [None] * 6
            barrier = threading.Barrier(6)

            def worker(index):
                barrier.wait()
                with SocketDaemonClient(socket_path, timeout=300) as client:
                    responses[index] = client.reason(
                        circuits[index % 2], request_id=f"sock-{index}"
                    )

            run_threads(6, worker)
            assert all(response["ok"] for response in responses)
            for index, response in enumerate(responses):
                expected = sequential[index % 2]
                assert response["id"] == f"sock-{index}"
                assert (response["result"]["num_full_adders"]
                        == expected.tree.num_full_adders)
            with SocketDaemonClient(socket_path) as client:
                assert client.ping()["ok"]
                stats = client.stats()
                assert stats["ok"]
                assert stats["stats"]["scheduler"]["completed"] == 6
                assert stats["stats"]["scheduler"]["num_shards"] < 6
        finally:
            server.close()
            daemon.close()
        assert not socket_path.exists()

    def test_bad_requests_get_clean_errors(self, gamora, tmp_path):
        socket_path = tmp_path / "gamora.sock"
        daemon = GamoraDaemon(gamora, batch_window_ms=1).start()
        server = DaemonServer(daemon, socket_path).start()
        try:
            with SocketDaemonClient(socket_path) as client:
                for message, fragment in [
                    ({"op": "reason"}, "netlist"),
                    ({"op": "reason", "netlist": "garbage"}, "unparsable"),
                    ({"op": "warp"}, "unknown op"),
                    ({"op": "reason", "netlist": "aag 0 0 0 0 0",
                      "options": {"warp": 9}}, "unknown options"),
                ]:
                    response = client.request(message)
                    assert not response["ok"]
                    assert fragment in response["error"]["message"] or (
                        response["error"]["type"] == "bad_request"
                    )
                    assert response["error"]["retriable"] is False
                # Malformed JSON doesn't kill the connection.
                client._sock.sendall(b"{not json}\n")
                line = client._reader.readline()
                assert not json.loads(line)["ok"]
                assert client.ping()["ok"]
        finally:
            server.close()
            daemon.close()

    def test_shutdown_op_releases_serve_forever(self, gamora, circuits,
                                                tmp_path):
        socket_path = tmp_path / "gamora.sock"
        daemon = GamoraDaemon(gamora, batch_window_ms=1).start()
        server = DaemonServer(daemon, socket_path)
        done = threading.Event()

        def serve():
            server.serve_forever()
            done.set()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        deadline = time.monotonic() + 30
        while not socket_path.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        with SocketDaemonClient(socket_path) as client:
            assert client.reason(circuits[0])["ok"]
            final = client.shutdown()
            assert final["ok"]
            assert final["stats"]["scheduler"]["completed"] == 1
        assert done.wait(timeout=30)
        thread.join(timeout=30)
        server.close()
        daemon.close()


class TestServeCli:
    @pytest.mark.slow
    def test_serve_boot_reason_shutdown(self, gamora, circuits, tmp_path,
                                        capsys):
        from repro.cli import main

        model_path = tmp_path / "model.npz"
        gamora.save(model_path)
        socket_path = tmp_path / "gamora.sock"
        cache_dir = tmp_path / "cache"
        run_dir = tmp_path / "runs"
        exit_code = []

        def serve():
            exit_code.append(main([
                "serve", str(model_path), "--socket", str(socket_path),
                "--batch-window-ms", "20", "--cache-dir", str(cache_dir),
                "--run-dir", str(run_dir),
            ]))

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        deadline = time.monotonic() + 60
        while not socket_path.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert socket_path.exists(), "daemon never bound its socket"
        with SocketDaemonClient(socket_path, timeout=300) as client:
            response = client.reason(circuits[0], request_id="cli-0")
            assert response["ok"]
            client.shutdown()
        thread.join(timeout=120)
        assert not thread.is_alive()
        assert exit_code == [0]
        out = capsys.readouterr().out
        assert "served 1 requests" in out
        assert "spilled" in out
        assert (run_dir / "cli-0" / "stats.json").is_file()
        assert (cache_dir / "MODEL.tag").is_file()

    def test_serve_unusable_cache_dir_is_clean_error(self, gamora, tmp_path,
                                                     capsys):
        from repro.cli import main

        model_path = tmp_path / "model.npz"
        gamora.save(model_path)
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "foreign.npz").write_bytes(b"not ours")
        code = main(["serve", str(model_path), "--socket",
                     str(tmp_path / "s.sock"), "--cache-dir", str(bad)])
        assert code == 2
        assert "cannot use cache dir" in capsys.readouterr().err
