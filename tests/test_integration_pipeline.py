"""End-to-end integration tests across every subsystem.

Each test exercises a multi-module pipeline exactly the way the examples
and benchmarks wire it together, so regressions at module boundaries are
caught even when per-module unit tests still pass.
"""

import numpy as np
import pytest

from repro.aig import read_aiger, simulation_equivalent, write_aig
from repro.core import Gamora
from repro.generators import booth_multiplier, csa_multiplier
from repro.generators.datapath import multiply_accumulate
from repro.learn import TrainConfig
from repro.reasoning import (
    analyze_adder_tree,
    compare_adder_trees,
    extract_adder_tree,
)
from repro.techmap import asap7_like, map_unmap, mcnc_reduced
from repro.verify import check_equivalence, verify_multiplier

# Full train->reason->verify loops: minutes-scale, the CI fast lane skips them.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def gamora():
    model = Gamora(model="shallow", train_config=TrainConfig(epochs=220))
    model.fit([csa_multiplier(8)])
    return model


class TestGenerateTrainReasonVerify:
    """generate -> train -> reason -> SCA-verify, the full paper loop."""

    def test_full_loop_on_unseen_width(self, gamora):
        target = csa_multiplier(12)
        outcome = gamora.reason(target)
        exact = extract_adder_tree(target.aig)
        scores = compare_adder_trees(exact, outcome.tree)
        assert scores["f1"] > 0.95
        # The predicted tree must be good enough to drive verification.
        result = verify_multiplier(target, mode="adder", tree=outcome.tree)
        assert result.ok

    def test_reasoning_through_aiger_roundtrip(self, gamora, tmp_path):
        """Writing and re-reading the netlist must not affect reasoning."""
        target = csa_multiplier(10)
        path = tmp_path / "target.aig"
        write_aig(target.aig, path)
        reloaded = read_aiger(path)
        direct = gamora.evaluate(target, labels_source="structural")
        via_file = gamora.evaluate(reloaded, labels_source="structural")
        assert direct["mean"] == pytest.approx(via_file["mean"], abs=1e-12)


class TestMapReasonLoop:
    """map -> unmap -> reason -> CEC, the Fig. 5 pipeline."""

    @pytest.mark.parametrize("library_fn", [mcnc_reduced, asap7_like],
                             ids=["mcnc", "asap7"])
    def test_mapped_netlist_pipeline(self, gamora, library_fn):
        target = csa_multiplier(8)
        mapped = map_unmap(target.aig, library_fn())
        # Equivalence proof first: the substrate must be sound.
        assert check_equivalence(target.aig, mapped).equivalent
        # Exact reasoning defines ground truth on the mapped netlist.
        exact = extract_adder_tree(mapped)
        assert exact.num_full_adders > 0
        # Without retraining the model is in its degraded regime (the whole
        # point of Fig. 5); the pipeline must still run and produce a
        # non-empty tree, with a non-trivial share recovered under the
        # structure-preserving simple library.
        outcome = gamora.reason(mapped)
        scores = compare_adder_trees(exact, outcome.tree)
        assert len(outcome.tree.adders) > 0
        if library_fn is mcnc_reduced:
            assert scores["recall"] > 0.2

    def test_retrained_model_recovers_mapped_accuracy(self):
        library = asap7_like()
        train = map_unmap(csa_multiplier(8).aig, library)
        target = map_unmap(csa_multiplier(12).aig, library)
        retrained = Gamora(model="deep", train_config=TrainConfig(epochs=300))
        retrained.fit([train])
        metrics = retrained.evaluate(target)
        assert metrics["mean"] > 0.85


class TestDatapathReasoning:
    def test_mac_tree_recovered_and_verified(self, gamora):
        """Gamora generalizes from multipliers to a MAC's adder tree."""
        block = multiply_accumulate(8)
        exact = extract_adder_tree(block.aig)
        outcome = gamora.reason(block.aig)
        scores = compare_adder_trees(exact, outcome.tree)
        assert scores["recall"] > 0.85


class TestBoothPipeline:
    def test_booth_deep_model_end_to_end(self):
        model = Gamora(model="deep", train_config=TrainConfig(epochs=350))
        model.fit([booth_multiplier(8)])
        target = booth_multiplier(12)
        metrics = model.evaluate(target)
        assert metrics["mean"] > 0.9
        outcome = model.reason(target)
        exact = extract_adder_tree(target.aig)
        scores = compare_adder_trees(exact, outcome.tree)
        assert scores["f1"] > 0.7

    def test_report_summarizes_word_structure(self, gamora):
        target = csa_multiplier(10)
        outcome = gamora.reason(target)
        report = analyze_adder_tree(target.aig, outcome.tree)
        assert report.num_adders == len(outcome.tree.adders)
        assert report.depth >= 3
        assert report.pp_leaves


class TestCrossEngineConsistency:
    def test_three_exact_engines_agree(self):
        """Simulation, BDDs, and SCA must agree a multiplier is correct."""
        gen = csa_multiplier(5)
        mapped = map_unmap(gen.aig, asap7_like())
        assert simulation_equivalent(gen.aig, mapped)
        assert check_equivalence(gen.aig, mapped, engine="bdd").equivalent
        assert verify_multiplier(gen, mode="adder").ok

    def test_all_engines_refute_broken_design(self):
        gen = csa_multiplier(5)
        broken = csa_multiplier(5)
        from repro.aig import lit_not

        broken.aig._outputs[3] = lit_not(broken.aig._outputs[3])
        assert not simulation_equivalent(gen.aig, broken.aig)
        assert not check_equivalence(gen.aig, broken.aig, engine="bdd").equivalent
        assert not verify_multiplier(broken, mode="adder").ok
